"""Recursive-descent parser for the XPath query subset.

Grammar (tokens from :mod:`repro.xmlq.lexer`)::

    path       := ('/' | '//')? step (('/' | '//') step)*
    step       := nametest predicate*
    nametest   := NAME | STAR
    predicate  := '[' rel_path comparison? ']'
    rel_path   := step (('/' | '//') step)*
    comparison := OP (NAME | LITERAL)

Paths starting with ``/`` or ``//`` are absolute; inside predicates paths
are relative.  The paper's sample queries (Figure 2) all parse under this
grammar, e.g.::

    /article[author[first/John][last/Smith]][conf/INFOCOM]
    /article/title/TCP
    /article//last/Smith
"""

from __future__ import annotations

from repro.perf import counters
from repro.xmlq.astnodes import Axis, Comparison, LocationPath, LocationStep, Predicate
from repro.xmlq.lexer import Token, TokenType, tokenize


class XPathParseError(ValueError):
    """Raised when an expression does not conform to the query grammar."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} (near {token.value!r} at offset {token.position})")
        self.token = token


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def expect(self, token_type: TokenType) -> Token:
        if self.current.type is not token_type:
            raise XPathParseError(f"expected {token_type.name}", self.current)
        return self.advance()

    def parse(self) -> LocationPath:
        path = self.parse_path(allow_absolute=True)
        if self.current.type is not TokenType.EOF:
            raise XPathParseError("unexpected trailing tokens", self.current)
        return path

    def parse_path(self, allow_absolute: bool) -> LocationPath:
        absolute = False
        first_axis = Axis.CHILD
        if self.current.type in (TokenType.SLASH, TokenType.DSLASH):
            if not allow_absolute:
                # A relative path inside a predicate cannot start with '/'.
                raise XPathParseError(
                    "absolute path not allowed inside a predicate", self.current
                )
            absolute = True
            first_axis = (
                Axis.DESCENDANT
                if self.current.type is TokenType.DSLASH
                else Axis.CHILD
            )
            self.advance()

        steps = [self.parse_step(first_axis)]
        while self.current.type in (TokenType.SLASH, TokenType.DSLASH):
            axis = (
                Axis.DESCENDANT
                if self.current.type is TokenType.DSLASH
                else Axis.CHILD
            )
            self.advance()
            steps.append(self.parse_step(axis))
        return LocationPath(tuple(steps), absolute=absolute)

    def parse_step(self, axis: Axis) -> LocationStep:
        token = self.current
        if token.type is TokenType.STAR:
            name = "*"
            self.advance()
        elif token.type is TokenType.NAME:
            name = token.value
            self.advance()
        else:
            raise XPathParseError("expected an element name or '*'", token)

        predicates: list[Predicate] = []
        while self.current.type is TokenType.LBRACKET:
            predicates.append(self.parse_predicate())
        return LocationStep(axis, name, tuple(predicates))

    def parse_predicate(self) -> Predicate:
        self.expect(TokenType.LBRACKET)
        path = self.parse_path(allow_absolute=False)
        comparison = None
        if self.current.type is TokenType.OP:
            op = self.advance().value
            value_token = self.current
            if value_token.type in (TokenType.NAME, TokenType.LITERAL):
                self.advance()
            else:
                raise XPathParseError("expected a comparison value", value_token)
            comparison = Comparison(op, value_token.value)
        self.expect(TokenType.RBRACKET)
        return Predicate(path, comparison)


def parse_xpath(expression: str) -> LocationPath:
    """Parse an XPath expression of the query subset into an AST.

    Raises :class:`XPathParseError` (or
    :class:`repro.xmlq.lexer.XPathLexError`) on malformed input.
    """
    counters.xpath_parses += 1
    return _Parser(tokenize(expression)).parse()
