"""Tree patterns and the covering relation on queries.

Section III-B of the paper defines *covering*: ``q' ⊒ q`` holds when every
descriptor that matches ``q`` also matches ``q'``.  Covering induces a
partial order on queries (Figure 3) which the index hierarchy follows: an
index maps a query to strictly more specific queries it covers.

Deciding covering is the classic XPath *containment* problem.  For the
query subset used here -- tree patterns with child (``/``) and descendant
(``//``) edges, wildcards, and value tests -- containment is decided by
searching for a *homomorphism* from the covering pattern into the covered
pattern:

- homomorphism existence is **sound** for all patterns (if we find one,
  covering truly holds), and
- it is **complete** for patterns without descendant edges and wildcards,
  which is exactly the family of bibliographic queries the system indexes
  (Miklau & Suciu, "Containment and equivalence for an XPath fragment").

Patterns are also built from descriptors themselves: the pattern of a
descriptor is its most specific query (MSD), so ``covers(q, msd)`` answers
"does ``q`` potentially match this file" without touching the evaluator.

A wildcard node never maps onto a node known to be a *text value*
(``is_value=True``), mirroring the evaluator, where ``*`` selects elements
only.
"""

from __future__ import annotations

import itertools
import re
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.perf import counters
from repro.xmlq.astnodes import (
    Axis,
    Comparison,
    LocationPath,
    LocationStep,
    Predicate,
)
from repro.xmlq.element import Element
from repro.xmlq.xpparser import parse_xpath

_BARE_WORD_RE = re.compile(r"[\w.\-:+]+", re.UNICODE)


@dataclass(frozen=True)
class PatternEdge:
    """An edge to a child pattern node, labeled with its axis."""

    axis: Axis
    child: int


@dataclass
class PatternNode:
    """A node of a tree pattern.

    ``label`` is an element name, a value word, or ``"*"``.  ``is_value``
    is ``True`` when the node is known to denote a text value, ``False``
    when known to be an element, and ``None`` when the query syntax leaves
    it ambiguous (the paper's value-as-step notation).  ``comparison``
    holds a residual value constraint such as ``>=1990``.
    """

    label: str
    is_value: Optional[bool] = None
    comparison: Optional[Comparison] = None
    edges: list[PatternEdge] = field(default_factory=list)

    @property
    def is_wildcard(self) -> bool:
        return self.label == "*"


#: Never-reused identity tokens for pattern objects; unlike ``id()``,
#: a serial is not recycled when a pattern is garbage-collected, so it
#: is safe to key the covering memo table on it.
_PATTERN_SERIALS = itertools.count()


class TreePattern:
    """A rooted tree pattern over descriptor trees.

    Node 0 is a virtual root standing above the document element, so that
    absolute paths can constrain the document element's name uniformly.

    Every pattern carries a process-unique ``serial`` and a mutation
    ``version``; the pair identifies one immutable snapshot of the
    pattern and keys the memoized covering check.  Patterns returned by
    the interning cache of :func:`pattern_from_xpath` are shared between
    callers and therefore sealed against further mutation.
    """

    VIRTUAL_ROOT_LABEL = "#root"

    def __init__(self) -> None:
        self.nodes: list[PatternNode] = [
            PatternNode(self.VIRTUAL_ROOT_LABEL, is_value=False)
        ]
        self.serial: int = next(_PATTERN_SERIALS)
        self.version: int = 0
        self._fingerprint: Optional[
            tuple[int, frozenset[str], frozenset[str]]
        ] = None
        self._interned = False

    def add_node(
        self,
        parent: int,
        axis: Axis,
        label: str,
        is_value: Optional[bool] = None,
        comparison: Optional[Comparison] = None,
    ) -> int:
        """Append a node under ``parent`` and return its index."""
        if self._interned:
            raise ValueError(
                "cannot mutate an interned TreePattern shared by the "
                "pattern cache; build a fresh pattern instead"
            )
        self.version += 1
        self._fingerprint = None
        index = len(self.nodes)
        self.nodes.append(PatternNode(label, is_value=is_value, comparison=comparison))
        self.nodes[parent].edges.append(PatternEdge(axis, index))
        return index

    @property
    def fingerprint(self) -> tuple[frozenset[str], frozenset[str]]:
        """``(required_labels, all_labels)`` of the pattern's nodes.

        ``required_labels`` are the labels of non-wildcard nodes: a
        homomorphism must map each of them onto an identically-labeled
        target node, so ``covers(p, q)`` can only hold when
        ``p.required_labels <= q.all_labels``.  The covering check uses
        this as a cheap, sound rejection filter before searching for a
        homomorphism.
        """
        cached = self._fingerprint
        if cached is not None and cached[0] == self.version:
            return cached[1], cached[2]
        labels: set[str] = set()
        required: set[str] = set()
        for node in self.nodes[1:]:
            labels.add(node.label)
            if node.label != "*":
                required.add(node.label)
        computed = (self.version, frozenset(required), frozenset(labels))
        self._fingerprint = computed
        return computed[1], computed[2]

    @property
    def root(self) -> int:
        return 0

    def size(self) -> int:
        """Number of pattern nodes, excluding the virtual root."""
        return len(self.nodes) - 1

    def children(self, index: int) -> list[PatternEdge]:
        """The outgoing edges of a pattern node."""
        return self.nodes[index].edges

    def strict_descendants(self, index: int) -> list[int]:
        """Indices of every strict descendant of ``index``, pre-order."""
        result: list[int] = []
        stack = [edge.child for edge in self.nodes[index].edges]
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(edge.child for edge in self.nodes[node].edges)
        return result

    def __repr__(self) -> str:
        return f"TreePattern({self.size()} nodes)"


# Interning cache: query text -> shared, sealed TreePattern.  The same
# canonical texts recur throughout a simulation (every search step
# rebuilds the pattern of its query in the seed), so repeats return the
# identical object -- which in turn makes the memoized covering check
# below hit on (serial, version) identity.
_PATTERN_CACHE: OrderedDict[str, TreePattern] = OrderedDict()
_PATTERN_CACHE_LIMIT = 16_384


def pattern_from_xpath(expression: Union[str, LocationPath]) -> TreePattern:
    """Build (or recall) the tree pattern of a query.

    Accepts a source string or a parsed :class:`LocationPath`; the path
    must be absolute.  String inputs are interned: repeated calls with
    the same text return one shared, immutable pattern object.
    """
    if not isinstance(expression, str):
        return _build_pattern(expression)
    counters.pattern_calls += 1
    cached = _PATTERN_CACHE.get(expression)
    if cached is not None:
        counters.pattern_cache_hits += 1
        _PATTERN_CACHE.move_to_end(expression)
        return cached
    counters.pattern_cache_misses += 1
    pattern = _build_pattern(parse_xpath(expression))
    pattern.fingerprint  # precompute before the object is shared
    pattern._interned = True
    _PATTERN_CACHE[expression] = pattern
    while len(_PATTERN_CACHE) > _PATTERN_CACHE_LIMIT:
        _PATTERN_CACHE.popitem(last=False)
    return pattern


def _build_pattern(path: LocationPath) -> TreePattern:
    """Uncached pattern construction from a parsed path."""
    if not path.absolute:
        raise ValueError("patterns are built from absolute paths")
    pattern = TreePattern()
    _attach_steps(pattern, pattern.root, path.steps)
    return pattern


def _attach_steps(
    pattern: TreePattern, anchor: int, steps: tuple[LocationStep, ...]
) -> int:
    """Attach a chain of location steps below ``anchor``; return the index
    of the last step's node."""
    current = anchor
    for step in steps:
        current = pattern.add_node(current, step.axis, step.name)
        for predicate in step.predicates:
            _attach_predicate(pattern, current, predicate)
    return current


def _attach_predicate(pattern: TreePattern, anchor: int, predicate: Predicate) -> None:
    last = _attach_steps(pattern, anchor, predicate.path.steps)
    comparison = predicate.comparison
    if comparison is None:
        return
    if comparison.op == "=" and _BARE_WORD_RE.fullmatch(comparison.value):
        # `[p = v]` and `[p/v]` are the same constraint (see the
        # normalizer); build the same pattern for both so covering treats
        # them interchangeably.
        pattern.add_node(last, Axis.CHILD, comparison.value, is_value=True)
        return
    node = pattern.nodes[last]
    if node.comparison is not None:
        raise ValueError("a pattern node cannot carry two comparisons")
    node.comparison = comparison


def descriptor_to_pattern(descriptor: Element) -> TreePattern:
    """Build the pattern of a descriptor -- its most specific query.

    Element tags become element nodes (``is_value=False``); leaf text
    becomes a value child node (``is_value=True``), matching the paper's
    notation where values are trailing path components.
    """
    pattern = TreePattern()
    _attach_element(pattern, pattern.root, descriptor)
    return pattern


def _attach_element(pattern: TreePattern, anchor: int, element: Element) -> None:
    index = pattern.add_node(anchor, Axis.CHILD, element.tag, is_value=False)
    if element.text is not None:
        pattern.add_node(index, Axis.CHILD, element.text, is_value=True)
    for child in element.children:
        _attach_element(pattern, index, child)


# Memoized covering verdicts, keyed on the (serial, version) identity of
# both pattern snapshots.  Serials are never reused (unlike id()), so a
# stale entry can never be confused with a new pattern; versions guard
# against mutation between calls.
_COVERS_MEMO: OrderedDict[tuple[int, int, int, int], bool] = OrderedDict()
_COVERS_MEMO_LIMIT = 1 << 20


def covers(
    general: Union[str, LocationPath, TreePattern],
    specific: Union[str, LocationPath, TreePattern, Element],
) -> bool:
    """Decide the covering relation ``general ⊒ specific``.

    Returns ``True`` when a homomorphism from the pattern of ``general``
    into the pattern of ``specific`` exists, i.e. every descriptor matching
    ``specific`` also matches ``general``.  ``specific`` may be a
    descriptor :class:`Element`, in which case this answers whether
    ``general`` covers the descriptor's MSD.

    Verdicts are memoized on pattern identity (string inputs share
    interned patterns, so repeated text-level checks hit), and a
    fingerprint subset test rejects most negative pairs without running
    the homomorphism search.  Behavior is identical to
    :func:`covers_uncached`, which property tests enforce.
    """
    counters.covers_calls += 1
    general_pattern = _as_pattern(general)
    if isinstance(specific, Element):
        specific_pattern = descriptor_to_pattern(specific)
    else:
        specific_pattern = _as_pattern(specific)
    key = (
        general_pattern.serial,
        general_pattern.version,
        specific_pattern.serial,
        specific_pattern.version,
    )
    cached = _COVERS_MEMO.get(key)
    if cached is not None:
        counters.covers_cache_hits += 1
        _COVERS_MEMO.move_to_end(key)
        return cached
    counters.covers_cache_misses += 1
    required, _ = general_pattern.fingerprint
    _, available = specific_pattern.fingerprint
    if not required <= available:
        counters.covers_fingerprint_rejections += 1
        result = False
    else:
        result = _Homomorphism(general_pattern, specific_pattern).exists()
    _COVERS_MEMO[key] = result
    while len(_COVERS_MEMO) > _COVERS_MEMO_LIMIT:
        _COVERS_MEMO.popitem(last=False)
    return result


def covers_uncached(
    general: Union[str, LocationPath, TreePattern],
    specific: Union[str, LocationPath, TreePattern, Element],
) -> bool:
    """Reference covering check: no interning, memo, or prefilter.

    This is the seed implementation, kept as the oracle that property
    tests compare the optimized :func:`covers` against.
    """
    general_pattern = _fresh_pattern(general)
    if isinstance(specific, Element):
        specific_pattern = descriptor_to_pattern(specific)
    else:
        specific_pattern = _fresh_pattern(specific)
    return _Homomorphism(general_pattern, specific_pattern).exists()


def clear_pattern_caches() -> None:
    """Drop interned patterns and covering verdicts (tests/benchmarks)."""
    _PATTERN_CACHE.clear()
    _COVERS_MEMO.clear()


def _as_pattern(query: Union[str, LocationPath, TreePattern]) -> TreePattern:
    if isinstance(query, TreePattern):
        return query
    return pattern_from_xpath(query)


def _fresh_pattern(query: Union[str, LocationPath, TreePattern]) -> TreePattern:
    if isinstance(query, TreePattern):
        return query
    if isinstance(query, str):
        return _build_pattern(parse_xpath(query))
    return _build_pattern(query)


class _Homomorphism:
    """Memoized search for an embedding of ``source`` into ``target``."""

    def __init__(self, source: TreePattern, target: TreePattern) -> None:
        self.source = source
        self.target = target
        self._memo: dict[tuple[int, int], bool] = {}

    def exists(self) -> bool:
        counters.homomorphism_runs += 1
        return self._embeds(self.source.root, self.target.root)

    def _embeds(self, source_index: int, target_index: int) -> bool:
        counters.homomorphism_node_visits += 1
        key = (source_index, target_index)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        # Guard against re-entrant evaluation (patterns are trees, so the
        # recursion is finite, but memoizing False first keeps the table
        # consistent while children are explored).
        self._memo[key] = False
        result = self._check(source_index, target_index)
        self._memo[key] = result
        return result

    def _check(self, source_index: int, target_index: int) -> bool:
        source_node = self.source.nodes[source_index]
        target_node = self.target.nodes[target_index]
        if not self._labels_compatible(source_node, target_node):
            return False
        if not self._comparison_implied(source_node, target_index):
            return False
        for edge in source_node.edges:
            if not self._edge_embeds(edge, target_index):
                return False
        return True

    def _labels_compatible(
        self, source_node: PatternNode, target_node: PatternNode
    ) -> bool:
        if source_node.label == TreePattern.VIRTUAL_ROOT_LABEL:
            return target_node.label == TreePattern.VIRTUAL_ROOT_LABEL
        if target_node.label == TreePattern.VIRTUAL_ROOT_LABEL:
            return False
        if source_node.is_wildcard:
            # '*' selects element nodes only; it must not swallow a node
            # known to be a text value.
            return target_node.is_value is not True
        if source_node.label != target_node.label:
            return False
        # Identical labels: a value node can only stand for a value node.
        if source_node.is_value is True and target_node.is_value is False:
            return False
        if source_node.is_value is False and target_node.is_value is True:
            return False
        return True

    def _comparison_implied(self, source_node: PatternNode, target_index: int) -> bool:
        constraint = source_node.comparison
        if constraint is None:
            return True
        target_node = self.target.nodes[target_index]
        if target_node.comparison is not None and _comparison_implies(
            target_node.comparison, constraint
        ):
            return True
        # An exact value child of the target (e.g. year -> 1996) also
        # witnesses the constraint when the value satisfies it.
        for edge in target_node.edges:
            child = self.target.nodes[edge.child]
            if (
                edge.axis is Axis.CHILD
                and not child.edges
                and child.is_value is not False
                and _value_satisfies(child.label, constraint)
            ):
                return True
        return False

    def _edge_embeds(self, edge: PatternEdge, target_index: int) -> bool:
        if edge.axis is Axis.CHILD:
            candidates = [
                e.child
                for e in self.target.children(target_index)
                if e.axis is Axis.CHILD
            ]
            # A child edge of the source can also be witnessed by a
            # descendant edge only if the descendant is a direct child,
            # which a '//' target edge does not guarantee -- so it cannot.
        else:
            candidates = self.target.strict_descendants(target_index)
        return any(
            self._embeds(edge.child, candidate) for candidate in candidates
        )


def _value_satisfies(value: str, comparison: Comparison) -> bool:
    from repro.xmlq.evaluator import _comparison_holds

    return _comparison_holds(value, comparison)


def _comparison_implies(known: Comparison, required: Comparison) -> bool:
    """True when any value satisfying ``known`` also satisfies ``required``."""
    if known == required:
        return True
    if known.op == "=":
        return _value_satisfies(known.value, required)
    known_num = _as_number(known.value)
    required_num = _as_number(required.value)
    if known_num is None or required_num is None:
        # Non-numeric ordering implication is only safe for identical
        # constraints, handled above.
        return False
    if required.op == "!=":
        # known is a range/exclusion; it implies v != c only if c lies
        # outside the range.
        return not _range_contains(known, required_num)
    if known.op == "!=":
        return False
    return _range_implies(known.op, known_num, required.op, required_num)


def _range_contains(comparison: Comparison, value: float) -> bool:
    bound = _as_number(comparison.value)
    if bound is None:
        return True  # conservatively assume it may contain the value
    op = comparison.op
    if op == "<":
        return value < bound
    if op == "<=":
        return value <= bound
    if op == ">":
        return value > bound
    if op == ">=":
        return value >= bound
    return True


def _range_implies(
    known_op: str, known_bound: float, required_op: str, required_bound: float
) -> bool:
    if required_op in ("<", "<="):
        if known_op not in ("<", "<="):
            return False
        if known_bound < required_bound:
            return True
        if known_bound == required_bound:
            return required_op == "<=" or known_op == "<"
        return False
    if required_op in (">", ">="):
        if known_op not in (">", ">="):
            return False
        if known_bound > required_bound:
            return True
        if known_bound == required_bound:
            return required_op == ">=" or known_op == ">"
        return False
    if required_op == "=":
        return False  # a range never pins a single value in our subset
    return False


def _as_number(text: str) -> Optional[float]:
    try:
        return float(text)
    except ValueError:
        return None
