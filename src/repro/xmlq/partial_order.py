"""Partial-order graph of queries under the covering relation.

Figure 3 of the paper shows the partial ordering of queries: an edge
``q_i -> q_j`` means ``q_i ⊒ q_j`` (``q_i`` is more specific than or equal
to ``q_j`` -- the paper draws more specific queries above less specific
ones).  This module materializes that graph for a finite set of queries,
computes its transitive reduction (the Hasse diagram, which is what the
paper's figure draws by omitting self and transitive edges), and exposes
the navigation primitives the indexing layer builds on.

Queries are kept in their canonical normalized text form, so equivalent
expressions collapse to a single graph node.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.xmlq.normalize import normalize_xpath
from repro.xmlq.pattern import TreePattern, covers, pattern_from_xpath


class PartialOrderGraph:
    """The covering partial order over a finite set of queries."""

    def __init__(self, queries: Optional[Iterable[str]] = None) -> None:
        self._patterns: dict[str, TreePattern] = {}
        # _more_specific[q] = set of queries strictly covered by q
        # (q ⊒ other, q != other).
        self._more_general: dict[str, set[str]] = {}
        self._more_specific: dict[str, set[str]] = {}
        if queries is not None:
            for query in queries:
                self.add(query)

    def add(self, query: str) -> str:
        """Add a query; returns its canonical form (the graph node id)."""
        canonical = normalize_xpath(query)
        if canonical in self._patterns:
            return canonical
        pattern = pattern_from_xpath(canonical)
        self._more_general[canonical] = set()
        self._more_specific[canonical] = set()
        for other, other_pattern in self._patterns.items():
            other_covers_new = covers(other_pattern, pattern)
            new_covers_other = covers(pattern, other_pattern)
            if other_covers_new and new_covers_other:
                # Equivalent queries that normalization did not collapse
                # (possible for //-queries); treat as mutually related.
                self._more_general[canonical].add(other)
                self._more_specific[other].add(canonical)
                self._more_general[other].add(canonical)
                self._more_specific[canonical].add(other)
                continue
            if other_covers_new:
                self._more_general[canonical].add(other)
                self._more_specific[other].add(canonical)
            elif new_covers_other:
                self._more_specific[canonical].add(other)
                self._more_general[other].add(canonical)
        self._patterns[canonical] = pattern
        return canonical

    def __contains__(self, query: str) -> bool:
        return normalize_xpath(query) in self._patterns

    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> Iterator[str]:
        return iter(self._patterns)

    @property
    def queries(self) -> list[str]:
        """All canonical queries in the graph."""
        return list(self._patterns)

    def more_general(self, query: str) -> set[str]:
        """Queries that strictly cover ``query`` (are less specific)."""
        return set(self._more_general[normalize_xpath(query)])

    def more_specific(self, query: str) -> set[str]:
        """Queries strictly covered by ``query`` (are more specific)."""
        return set(self._more_specific[normalize_xpath(query)])

    def roots(self) -> list[str]:
        """Most general queries: those covered by no other query."""
        return [q for q in self._patterns if not self._more_general[q]]

    def leaves(self) -> list[str]:
        """Most specific queries: those covering no other query."""
        return [q for q in self._patterns if not self._more_specific[q]]

    def hasse_edges(self) -> list[tuple[str, str]]:
        """Edges ``(specific, general)`` of the transitive reduction.

        These are the arrows of Figure 3: ``q_i -> q_j`` with
        ``q_j ⊒ q_i`` and no intermediate query between them.
        """
        edges: list[tuple[str, str]] = []
        for query, generals in self._more_general.items():
            for general in generals:
                if general == query:
                    continue
                intermediate = any(
                    middle != query
                    and middle != general
                    and middle in self._more_general[query]
                    and general in self._more_general[middle]
                    for middle in generals
                )
                if not intermediate:
                    edges.append((query, general))
        return sorted(edges)

    def chains_to(self, target: str) -> list[list[str]]:
        """All maximal covering chains ending at ``target``.

        A chain is a path from a root of the Hasse diagram down to
        ``target`` -- the "query chains" of Section V-B, whose last member
        is the MSD.
        """
        canonical = normalize_xpath(target)
        if canonical not in self._patterns:
            raise KeyError(f"query not in graph: {target!r}")
        hasse: dict[str, set[str]] = {q: set() for q in self._patterns}
        for specific, general in self.hasse_edges():
            hasse[specific].add(general)

        chains: list[list[str]] = []

        def extend(path: list[str]) -> None:
            generals = hasse[path[0]]
            if not generals:
                chains.append(list(path))
                return
            for general in sorted(generals):
                if general in path:
                    continue  # equivalence cycles
                extend([general] + path)

        extend([canonical])
        return chains

    def covers_query(self, general: str, specific: str) -> bool:
        """Covering test between two member queries (cached patterns)."""
        general_pattern = self._patterns[normalize_xpath(general)]
        specific_pattern = self._patterns[normalize_xpath(specific)]
        return covers(general_pattern, specific_pattern)
