"""Partial-order graph of queries under the covering relation.

Figure 3 of the paper shows the partial ordering of queries: an edge
``q_i -> q_j`` means ``q_i ⊒ q_j`` (``q_i`` is more specific than or equal
to ``q_j`` -- the paper draws more specific queries above less specific
ones).  This module materializes that graph for a finite set of queries,
computes its transitive reduction (the Hasse diagram, which is what the
paper's figure draws by omitting self and transitive edges), and exposes
the navigation primitives the indexing layer builds on.

Queries are kept in their canonical normalized text form, so equivalent
expressions collapse to a single graph node.

Performance characteristics (the seed recomputed everything per call):

- ``add`` prefilters the pairwise covering checks with pattern
  fingerprints, skipping the homomorphism search for pairs whose label
  sets already rule covering out;
- the Hasse diagram is maintained *incrementally* on ``add`` -- adding a
  query only inserts its own reduction edges and deletes the existing
  edges it short-circuits -- so ``hasse_edges``/``chains_to`` read a
  standing structure instead of recomputing the transitive reduction
  (the seed algorithm survives as :meth:`_recompute_hasse_edges`, the
  oracle the property tests compare against);
- ``more_general``/``more_specific`` return live frozen views instead of
  copies, and skip normalization when the argument is already a known
  canonical text.
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from typing import Iterable, Iterator, Optional

from repro.perf import counters
from repro.xmlq.normalize import normalize_xpath
from repro.xmlq.pattern import TreePattern, covers, pattern_from_xpath


class QuerySetView(AbstractSet):
    """Read-only live view of a query set inside the graph.

    Supports iteration, membership, length, and the standard set
    operators (which return plain sets); call :meth:`copy` for a
    detached mutable ``set``.  The view reflects later graph mutations.
    """

    __slots__ = ("_backing",)

    def __init__(self, backing: set[str]) -> None:
        self._backing = backing

    def __iter__(self) -> Iterator[str]:
        return iter(self._backing)

    def __contains__(self, item: object) -> bool:
        return item in self._backing

    def __len__(self) -> int:
        return len(self._backing)

    @classmethod
    def _from_iterable(cls, iterable: Iterable[str]) -> set[str]:
        # Set-algebra results detach from the graph.
        return set(iterable)

    def copy(self) -> set[str]:
        """A detached mutable copy of the current contents."""
        return set(self._backing)

    def __repr__(self) -> str:
        return f"QuerySetView({sorted(self._backing)!r})"


class PartialOrderGraph:
    """The covering partial order over a finite set of queries."""

    def __init__(self, queries: Optional[Iterable[str]] = None) -> None:
        self._patterns: dict[str, TreePattern] = {}
        # _more_specific[q] = set of queries strictly covered by q
        # (q ⊒ other, q != other).
        self._more_general: dict[str, set[str]] = {}
        self._more_specific: dict[str, set[str]] = {}
        # Incrementally maintained transitive reduction:
        # _hasse[q] = generals of q with no intermediate query between.
        self._hasse: dict[str, set[str]] = {}
        self._hasse_sorted: Optional[list[tuple[str, str]]] = None
        if queries is not None:
            for query in queries:
                self.add(query)

    def add(self, query: str) -> str:
        """Add a query; returns its canonical form (the graph node id)."""
        canonical = self._canonicalize(query)
        if canonical in self._patterns:
            return canonical
        counters.pog_adds += 1
        pattern = pattern_from_xpath(canonical)
        required, available = pattern.fingerprint
        generals: set[str] = set()
        specifics: set[str] = set()
        for other, other_pattern in self._patterns.items():
            other_required, other_available = other_pattern.fingerprint
            # Fingerprint prefilter: a pattern can only cover another if
            # its required labels all occur in the other's label set.
            may_cover_new = other_required <= available
            may_be_covered = required <= other_available
            checks = int(may_cover_new) + int(may_be_covered)
            counters.pog_covers_checks += checks
            counters.pog_prefilter_skips += 2 - checks
            if not checks:
                continue
            if may_cover_new and covers(other_pattern, pattern):
                # Mutual covering (equivalent queries normalization did
                # not collapse, possible for //-queries) simply lands the
                # pair in both direction sets, as in the seed.
                generals.add(other)
                self._more_specific[other].add(canonical)
            if may_be_covered and covers(pattern, other_pattern):
                specifics.add(other)
                self._more_general[other].add(canonical)
        self._more_general[canonical] = generals
        self._more_specific[canonical] = specifics
        self._patterns[canonical] = pattern
        self._update_hasse(canonical, generals, specifics)
        return canonical

    def _update_hasse(
        self, canonical: str, generals: set[str], specifics: set[str]
    ) -> None:
        """Splice the new node into the maintained transitive reduction.

        Three local effects cover everything (proved equal to the full
        recompute by property tests):

        1. every existing edge ``s -> g`` with ``s`` below and ``g``
           above the new node is now transitive through it -- delete;
        2. the new node gets an up-edge to each of its generals that is
           not reachable through another of its generals;
        3. each of its specifics gets an up-edge to it unless another of
           the new node's specifics already sits between them.
        """
        self._hasse_sorted = None
        up: set[str] = set()
        self._hasse[canonical] = up
        for specific in specifics:
            doomed = self._hasse[specific] & generals
            if doomed:
                self._hasse[specific] -= doomed
                counters.pog_hasse_edge_updates += len(doomed)
        more_general = self._more_general
        for general in generals:
            if not any(
                middle != general and general in more_general[middle]
                for middle in generals
            ):
                up.add(general)
                counters.pog_hasse_edge_updates += 1
        for specific in specifics:
            if not (more_general[specific] & specifics):
                self._hasse[specific].add(canonical)
                counters.pog_hasse_edge_updates += 1

    def _canonicalize(self, query: str) -> str:
        """Canonical text of ``query``; skips normalization for texts
        that are already graph nodes (the common hot-path case)."""
        if query in self._patterns:
            return query
        return normalize_xpath(query)

    def _require(self, query: str) -> str:
        """Canonicalize and verify membership, with a helpful KeyError."""
        canonical = self._canonicalize(query)
        if canonical not in self._patterns:
            raise KeyError(
                f"query not in graph: {query!r} "
                f"(canonical form {canonical!r}; graph has "
                f"{len(self._patterns)} queries)"
            )
        return canonical

    def __contains__(self, query: str) -> bool:
        return self._canonicalize(query) in self._patterns

    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> Iterator[str]:
        return iter(self._patterns)

    @property
    def queries(self) -> list[str]:
        """All canonical queries in the graph."""
        return list(self._patterns)

    def more_general(self, query: str) -> QuerySetView:
        """Queries that strictly cover ``query`` (are less specific).

        Returns a read-only live view; use ``.copy()`` for a detached
        mutable set.  Raises :class:`KeyError` with the canonical form
        when the query is not a graph node.
        """
        return QuerySetView(self._more_general[self._require(query)])

    def more_specific(self, query: str) -> QuerySetView:
        """Queries strictly covered by ``query`` (are more specific).

        Returns a read-only live view; use ``.copy()`` for a detached
        mutable set.  Raises :class:`KeyError` with the canonical form
        when the query is not a graph node.
        """
        return QuerySetView(self._more_specific[self._require(query)])

    def roots(self) -> list[str]:
        """Most general queries: those covered by no other query."""
        return [q for q in self._patterns if not self._more_general[q]]

    def leaves(self) -> list[str]:
        """Most specific queries: those covering no other query."""
        return [q for q in self._patterns if not self._more_specific[q]]

    def hasse_edges(self) -> list[tuple[str, str]]:
        """Edges ``(specific, general)`` of the transitive reduction.

        These are the arrows of Figure 3: ``q_i -> q_j`` with
        ``q_j ⊒ q_i`` and no intermediate query between them.  Read from
        the incrementally maintained reduction; the sorted list is cached
        until the next mutation.
        """
        if self._hasse_sorted is None:
            self._hasse_sorted = sorted(
                (specific, general)
                for specific, generals in self._hasse.items()
                for general in generals
            )
        return list(self._hasse_sorted)

    def _recompute_hasse_edges(self) -> list[tuple[str, str]]:
        """The seed's from-scratch transitive reduction (reference oracle).

        Kept verbatim so property tests can assert the incremental
        maintenance of :meth:`hasse_edges` never diverges from it.
        """
        edges: list[tuple[str, str]] = []
        for query, generals in self._more_general.items():
            for general in generals:
                if general == query:
                    continue
                intermediate = any(
                    middle != query
                    and middle != general
                    and middle in self._more_general[query]
                    and general in self._more_general[middle]
                    for middle in generals
                )
                if not intermediate:
                    edges.append((query, general))
        return sorted(edges)

    def chains_to(self, target: str) -> list[list[str]]:
        """All maximal covering chains ending at ``target``.

        A chain is a path from a root of the Hasse diagram down to
        ``target`` -- the "query chains" of Section V-B, whose last member
        is the MSD.  Walks the maintained reduction directly.
        """
        canonical = self._require(target)
        hasse = self._hasse

        chains: list[list[str]] = []

        def extend(path: list[str]) -> None:
            generals = hasse[path[0]]
            if not generals:
                chains.append(list(path))
                return
            for general in sorted(generals):
                if general in path:
                    continue  # equivalence cycles
                extend([general] + path)

        extend([canonical])
        return chains

    def covers_query(self, general: str, specific: str) -> bool:
        """Covering test between two member queries (cached patterns)."""
        general_pattern = self._patterns[self._require(general)]
        specific_pattern = self._patterns[self._require(specific)]
        return covers(general_pattern, specific_pattern)
