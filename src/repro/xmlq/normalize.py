"""Canonical normal form for equivalent query expressions.

Footnote 1 of the paper notes that several equivalent XPath expressions
exist for the same query, and assumes they are "transformed into a unique
normalized format" before hashing.  This matters because the DHT key of a
query is ``h(q)``: two users writing the same query differently must reach
the same node.

The normal form used here:

1. **Equality rewriting** -- a comparison predicate ``[year=1996]`` becomes
   the value-step predicate ``[year/1996]``, the paper's own notation, when
   the value is a bare word.  Other operators (``<``, ``>=`` ...) are kept
   as comparisons.
2. **Path folding** -- trailing child steps of a path are folded into
   nested predicates, so ``/article/author/last/Smith`` and
   ``/article[author[last[Smith]]]`` normalize identically.  A query thus
   becomes a *rooted tree of predicates*, which is unique up to predicate
   order.  (Folding preserves match semantics -- whether the result set is
   empty -- which is the only semantics the indexing system uses.)
   Descendant (``//``) steps cannot be folded into our predicate grammar
   and act as folding barriers.
3. **Predicate ordering** -- predicates on each step are recursively
   normalized, deduplicated, and sorted by their serialized text.

The result is canonical for the descriptor-query family the paper indexes
(child axes, value tests) and a stable best-effort form for ``//``/``*``
queries.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from typing import Union

from repro.perf import counters
from repro.xmlq.astnodes import Axis, LocationPath, LocationStep, Predicate
from repro.xmlq.xpparser import parse_xpath

_BARE_WORD_RE = re.compile(r"[\w.\-:+]+", re.UNICODE)

# Normalization sits on the hot path: the simulation normalizes the same
# few hundred thousand query texts over and over (every search step and
# every graph membership test).  A bounded LRU cache of source text ->
# canonical text makes repeats O(1); canonical outputs are also mapped to
# themselves (normalization is idempotent, property-tested) so
# re-normalizing an already-canonical key is always a hit.
_NORMALIZE_CACHE: OrderedDict[str, str] = OrderedDict()
_NORMALIZE_CACHE_LIMIT = 65_536


def normalize_xpath(expression: Union[str, LocationPath]) -> str:
    """Return the canonical text of a query expression."""
    if not isinstance(expression, str):
        return str(normalize_path(expression))
    counters.normalize_calls += 1
    cached = _NORMALIZE_CACHE.get(expression)
    if cached is not None:
        counters.normalize_cache_hits += 1
        _NORMALIZE_CACHE.move_to_end(expression)
        return cached
    counters.normalize_cache_misses += 1
    canonical = str(normalize_path(expression))
    _NORMALIZE_CACHE[expression] = canonical
    _NORMALIZE_CACHE.setdefault(canonical, canonical)
    while len(_NORMALIZE_CACHE) > _NORMALIZE_CACHE_LIMIT:
        _NORMALIZE_CACHE.popitem(last=False)
    return canonical


def clear_normalize_cache() -> None:
    """Drop every cached normalization (for tests and benchmarks)."""
    _NORMALIZE_CACHE.clear()


def normalize_path(expression: Union[str, LocationPath]) -> LocationPath:
    """Return the canonical :class:`LocationPath` of a query expression."""
    path = parse_xpath(expression) if isinstance(expression, str) else expression
    return _normalize_location_path(path)


def _normalize_location_path(path: LocationPath) -> LocationPath:
    steps = [_normalize_step_predicates(step) for step in path.steps]
    steps = _fold_child_tail(steps)
    return LocationPath(tuple(steps), absolute=path.absolute)


def _normalize_step_predicates(step: LocationStep) -> LocationStep:
    normalized: list[Predicate] = []
    for predicate in step.predicates:
        normalized.append(_normalize_predicate(predicate))
    unique = sorted(set(normalized), key=str)
    return step.with_predicates(tuple(unique))


def _normalize_predicate(predicate: Predicate) -> Predicate:
    path = predicate.path
    comparison = predicate.comparison
    # Rewrite `[p = v]` as `[p/v]` when v is a bare word, so the two
    # notations of the paper hash identically.
    if (
        comparison is not None
        and comparison.op == "="
        and _BARE_WORD_RE.fullmatch(comparison.value)
    ):
        extended = path.steps + (LocationStep(Axis.CHILD, comparison.value),)
        path = LocationPath(extended, absolute=False)
        comparison = None
    inner = _normalize_location_path(path)
    return Predicate(inner, comparison)


def _fold_child_tail(steps: list[LocationStep]) -> list[LocationStep]:
    """Fold trailing child steps into predicates of their predecessors.

    ``a/b[p]`` becomes ``a[b[p]]`` when ``b`` is reached via the child
    axis.  Folding repeats from the tail until only the first step, or a
    descendant-axis boundary, remains.
    """
    folded = list(steps)
    while len(folded) > 1 and folded[-1].axis is Axis.CHILD:
        tail = folded.pop()
        relative = LocationPath(
            (LocationStep(Axis.CHILD, tail.name, tail.predicates),),
            absolute=False,
        )
        previous = folded[-1]
        merged = tuple(
            sorted(set(previous.predicates + (Predicate(relative),)), key=str)
        )
        folded[-1] = previous.with_predicates(merged)
    return folded
