"""Canonical normal form for equivalent query expressions.

Footnote 1 of the paper notes that several equivalent XPath expressions
exist for the same query, and assumes they are "transformed into a unique
normalized format" before hashing.  This matters because the DHT key of a
query is ``h(q)``: two users writing the same query differently must reach
the same node.

The normal form used here:

1. **Equality rewriting** -- a comparison predicate ``[year=1996]`` becomes
   the value-step predicate ``[year/1996]``, the paper's own notation, when
   the value is a bare word.  Other operators (``<``, ``>=`` ...) are kept
   as comparisons.
2. **Path folding** -- trailing child steps of a path are folded into
   nested predicates, so ``/article/author/last/Smith`` and
   ``/article[author[last[Smith]]]`` normalize identically.  A query thus
   becomes a *rooted tree of predicates*, which is unique up to predicate
   order.  (Folding preserves match semantics -- whether the result set is
   empty -- which is the only semantics the indexing system uses.)
   Descendant (``//``) steps cannot be folded into our predicate grammar
   and act as folding barriers.
3. **Predicate ordering** -- predicates on each step are recursively
   normalized, deduplicated, and sorted by their serialized text.

The result is canonical for the descriptor-query family the paper indexes
(child axes, value tests) and a stable best-effort form for ``//``/``*``
queries.
"""

from __future__ import annotations

import re
from typing import Union

from repro.xmlq.astnodes import Axis, LocationPath, LocationStep, Predicate
from repro.xmlq.xpparser import parse_xpath

_BARE_WORD_RE = re.compile(r"[\w.\-:+]+", re.UNICODE)


def normalize_xpath(expression: Union[str, LocationPath]) -> str:
    """Return the canonical text of a query expression."""
    return str(normalize_path(expression))


def normalize_path(expression: Union[str, LocationPath]) -> LocationPath:
    """Return the canonical :class:`LocationPath` of a query expression."""
    path = parse_xpath(expression) if isinstance(expression, str) else expression
    return _normalize_location_path(path)


def _normalize_location_path(path: LocationPath) -> LocationPath:
    steps = [_normalize_step_predicates(step) for step in path.steps]
    steps = _fold_child_tail(steps)
    return LocationPath(tuple(steps), absolute=path.absolute)


def _normalize_step_predicates(step: LocationStep) -> LocationStep:
    normalized: list[Predicate] = []
    for predicate in step.predicates:
        normalized.append(_normalize_predicate(predicate))
    unique = sorted(set(normalized), key=str)
    return step.with_predicates(tuple(unique))


def _normalize_predicate(predicate: Predicate) -> Predicate:
    path = predicate.path
    comparison = predicate.comparison
    # Rewrite `[p = v]` as `[p/v]` when v is a bare word, so the two
    # notations of the paper hash identically.
    if (
        comparison is not None
        and comparison.op == "="
        and _BARE_WORD_RE.fullmatch(comparison.value)
    ):
        extended = path.steps + (LocationStep(Axis.CHILD, comparison.value),)
        path = LocationPath(extended, absolute=False)
        comparison = None
    inner = _normalize_location_path(path)
    return Predicate(inner, comparison)


def _fold_child_tail(steps: list[LocationStep]) -> list[LocationStep]:
    """Fold trailing child steps into predicates of their predecessors.

    ``a/b[p]`` becomes ``a[b[p]]`` when ``b`` is reached via the child
    axis.  Folding repeats from the tail until only the first step, or a
    descendant-axis boundary, remains.
    """
    folded = list(steps)
    while len(folded) > 1 and folded[-1].axis is Axis.CHILD:
        tail = folded.pop()
        relative = LocationPath(
            (LocationStep(Axis.CHILD, tail.name, tail.predicates),),
            absolute=False,
        )
        previous = folded[-1]
        merged = tuple(
            sorted(set(previous.predicates + (Predicate(relative),)), key=str)
        )
        folded[-1] = previous.with_predicates(merged)
    return folded
