"""Lexer for the XPath subset used by descriptor queries.

The paper (Section III-B) uses a subset of XPath 1.0 to express queries:
location steps separated by ``/``, predicates between brackets, the
wildcard ``*`` and the ancestor/descendant operator ``//``, and basic
comparison operators inside predicates.  The token language is accordingly
small:

========== ==========================================================
Token       Examples
========== ==========================================================
SLASH       ``/``
DSLASH      ``//``
LBRACKET    ``[``
RBRACKET    ``]``
STAR        ``*``
NAME        ``article``, ``author``, ``John``, ``1996`` (bare words)
OP          ``=`` ``!=`` ``<`` ``<=`` ``>`` ``>=``
LITERAL     ``"TCP"``, ``'1996'`` (quoted strings)
========== ==========================================================

Bare words double as element names *and* values, following the paper's own
query notation (e.g. ``/article/title/TCP``, where ``TCP`` is the value of
the ``title`` element); the evaluator resolves which one applies.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator


class TokenType(enum.Enum):
    """Kinds of token produced by :func:`tokenize`."""

    SLASH = "SLASH"
    DSLASH = "DSLASH"
    LBRACKET = "LBRACKET"
    RBRACKET = "RBRACKET"
    STAR = "STAR"
    NAME = "NAME"
    OP = "OP"
    LITERAL = "LITERAL"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (for diagnostics)."""

    type: TokenType
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, @{self.position})"


class XPathLexError(ValueError):
    """Raised on characters outside the query subset."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


# Bare words may contain word characters plus the punctuation commonly found
# in bibliographic values (dots, dashes, colons, plus signs).  Spaces inside
# values require quoting.
_NAME_RE = re.compile(r"[\w.\-:+]+", re.UNICODE)
_OPS = ("<=", ">=", "!=", "=", "<", ">")


def tokenize(expression: str) -> list[Token]:
    """Tokenize an XPath expression, always ending with an EOF token."""
    return list(_token_stream(expression))


def _token_stream(expression: str) -> Iterator[Token]:
    position = 0
    length = len(expression)
    while position < length:
        char = expression[position]
        if char.isspace():
            position += 1
            continue
        if char == "/":
            if expression.startswith("//", position):
                yield Token(TokenType.DSLASH, "//", position)
                position += 2
            else:
                yield Token(TokenType.SLASH, "/", position)
                position += 1
            continue
        if char == "[":
            yield Token(TokenType.LBRACKET, "[", position)
            position += 1
            continue
        if char == "]":
            yield Token(TokenType.RBRACKET, "]", position)
            position += 1
            continue
        if char == "*":
            yield Token(TokenType.STAR, "*", position)
            position += 1
            continue
        if char in "\"'":
            end = expression.find(char, position + 1)
            if end < 0:
                raise XPathLexError("unterminated string literal", position)
            yield Token(TokenType.LITERAL, expression[position + 1 : end], position)
            position = end + 1
            continue
        matched_op = next(
            (op for op in _OPS if expression.startswith(op, position)), None
        )
        if matched_op is not None:
            yield Token(TokenType.OP, matched_op, position)
            position += len(matched_op)
            continue
        match = _NAME_RE.match(expression, position)
        if match is not None:
            yield Token(TokenType.NAME, match.group(0), position)
            position = match.end()
            continue
        raise XPathLexError(f"unexpected character {char!r}", position)
    yield Token(TokenType.EOF, "", length)
