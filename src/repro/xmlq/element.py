"""Element-tree model for semi-structured file descriptors.

The paper (Section III-B) assumes descriptors are semi-structured XML data,
as in publicly-accessible bibliographic databases such as DBLP.  A
descriptor is a small tree of named elements whose leaves carry text values
(see Figure 1 of the paper for examples).

This module provides a deliberately small, dependency-free element tree:
just enough structure for descriptors and for the XPath subset evaluated by
:mod:`repro.xmlq.evaluator`.  Elements are hashable and comparable by value,
which lets higher layers use them as dictionary keys and deduplicate
descriptors.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class Element:
    """A node in a descriptor tree.

    An element has a ``tag`` (its name), optional ``text`` content, and an
    ordered list of child elements.  Mixed content (text and children on the
    same node) is not needed for descriptors and is rejected at construction
    time to keep the matching semantics unambiguous.
    """

    __slots__ = ("tag", "text", "_children", "_hash")

    def __init__(
        self,
        tag: str,
        children: Optional[Iterable["Element"]] = None,
        text: Optional[str] = None,
    ) -> None:
        if not tag or not isinstance(tag, str):
            raise ValueError(f"element tag must be a non-empty string, got {tag!r}")
        child_list = list(children) if children is not None else []
        if text is not None and child_list:
            raise ValueError(
                f"element <{tag}> cannot carry both text and child elements"
            )
        for child in child_list:
            if not isinstance(child, Element):
                raise TypeError(f"child of <{tag}> must be an Element, got {child!r}")
        self.tag = tag
        self.text = text
        self._children = tuple(child_list)
        self._hash: Optional[int] = None

    @property
    def children(self) -> tuple["Element", ...]:
        """The element's direct children, in document order."""
        return self._children

    @property
    def is_leaf(self) -> bool:
        """True when the element has no child elements."""
        return not self._children

    def child(self, tag: str) -> Optional["Element"]:
        """Return the first direct child with the given tag, or ``None``."""
        for candidate in self._children:
            if candidate.tag == tag:
                return candidate
        return None

    def children_named(self, tag: str) -> list["Element"]:
        """Return every direct child with the given tag, in order."""
        return [candidate for candidate in self._children if candidate.tag == tag]

    def find(self, path: str) -> Optional["Element"]:
        """Return the first descendant reached by a ``/``-separated tag path.

        This is a convenience accessor for well-known descriptor layouts,
        e.g. ``descriptor.find("author/last")``.  For general querying use
        :func:`repro.xmlq.evaluator.evaluate`.
        """
        node: Optional[Element] = self
        for part in path.split("/"):
            if node is None:
                return None
            node = node.child(part)
        return node

    def findtext(self, path: str) -> Optional[str]:
        """Return the text of the element at ``path``, or ``None``."""
        node = self.find(path)
        return node.text if node is not None else None

    def iter(self) -> Iterator["Element"]:
        """Iterate over this element and all descendants, pre-order."""
        stack: list[Element] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node._children))

    def descendants(self) -> Iterator["Element"]:
        """Iterate over all strict descendants, pre-order."""
        iterator = self.iter()
        next(iterator)
        yield from iterator

    def size(self) -> int:
        """Number of elements in the subtree rooted at this element."""
        return sum(1 for _ in self.iter())

    def depth(self) -> int:
        """Height of the subtree (a leaf has depth 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(child.depth() for child in self._children)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Element):
            return NotImplemented
        return (
            self.tag == other.tag
            and self.text == other.text
            and self._children == other._children
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.tag, self.text, self._children))
        return self._hash

    def __repr__(self) -> str:
        if self.text is not None:
            return f"Element({self.tag!r}, text={self.text!r})"
        return f"Element({self.tag!r}, {len(self._children)} children)"


def element(tag: str, *children: Element) -> Element:
    """Build an internal element from a tag and child elements."""
    return Element(tag, children=children)


def text_element(tag: str, text: str) -> Element:
    """Build a leaf element carrying a text value."""
    return Element(tag, text=str(text))
