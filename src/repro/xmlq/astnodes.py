"""AST node types for the XPath query subset.

A parsed query is a :class:`LocationPath`: a sequence of
:class:`LocationStep` objects, each reached along an :class:`Axis` (child
for ``/``, descendant for ``//``) and carrying zero or more
:class:`Predicate` filters.  A predicate is a relative location path that
must select at least one node, optionally followed by a
:class:`Comparison` against a literal value.

All nodes are immutable and hashable so that queries can serve as
dictionary keys in indexes and caches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Axis(enum.Enum):
    """How a location step relates to its context node."""

    CHILD = "child"
    DESCENDANT = "descendant"

    @property
    def separator(self) -> str:
        """The path separator that denotes this axis (``/`` or ``//``)."""
        return "/" if self is Axis.CHILD else "//"


@dataclass(frozen=True)
class Comparison:
    """A value comparison at the end of a predicate path.

    ``op`` is one of ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``.  The
    ``value`` is kept as source text; the evaluator compares numerically
    when both sides parse as numbers and lexically otherwise, matching the
    loose typing of XPath 1.0.
    """

    op: str
    value: str

    def __post_init__(self) -> None:
        if self.op not in ("=", "!=", "<", "<=", ">", ">="):
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.op}{_quote_literal(self.value)}"


@dataclass(frozen=True)
class Predicate:
    """A bracketed filter on a location step.

    The filter is satisfied when ``path`` (relative to the step's node)
    selects a non-empty node set and, if a ``comparison`` is present, at
    least one selected node's value satisfies it.
    """

    path: "LocationPath"
    comparison: Optional[Comparison] = None

    def __str__(self) -> str:
        body = str(self.path)
        if self.comparison is not None:
            body += str(self.comparison)
        return f"[{body}]"


@dataclass(frozen=True)
class LocationStep:
    """One step of a location path: an axis, a name test, and predicates.

    ``name`` is an element name, a bare value word (resolved against text
    content by the evaluator), or ``*`` which matches any element.
    """

    axis: Axis
    name: str
    predicates: tuple[Predicate, ...] = field(default_factory=tuple)

    @property
    def is_wildcard(self) -> bool:
        return self.name == "*"

    def with_predicates(self, predicates: tuple[Predicate, ...]) -> "LocationStep":
        """Return a copy of this step with the given predicate tuple."""
        return LocationStep(self.axis, self.name, predicates)

    def __str__(self) -> str:
        return self.name + "".join(str(predicate) for predicate in self.predicates)


@dataclass(frozen=True)
class LocationPath:
    """A complete location path.

    ``absolute`` paths start from the (virtual) document root; relative
    paths -- which appear inside predicates -- start from the context node.
    """

    steps: tuple[LocationStep, ...]
    absolute: bool = True

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a location path needs at least one step")

    @property
    def length(self) -> int:
        """Number of location steps in the path."""
        return len(self.steps)

    def __str__(self) -> str:
        pieces: list[str] = []
        for index, step in enumerate(self.steps):
            if index == 0:
                if self.absolute:
                    pieces.append(step.axis.separator)
            else:
                pieces.append(step.axis.separator)
            pieces.append(str(step))
        return "".join(pieces)


def _quote_literal(value: str) -> str:
    """Quote a literal for serialization when it is not a bare word."""
    import re

    if re.fullmatch(r"[\w.\-:+]+", value):
        return value
    if '"' in value:
        return f"'{value}'"
    return f'"{value}"'
