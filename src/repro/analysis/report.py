"""Assemble bench results into a single reproduction report.

Each figure/table bench persists its rendered output under
``benchmarks/results/``; this module stitches them into one document in
the paper's presentation order, ready to diff against EXPERIMENTS.md or
to attach to a reproduction note.

Usage::

    python -m repro.analysis.report [results_dir] [-o report.md]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional

#: Presentation order: the paper's evaluation sequence, then ablations.
SECTION_ORDER = [
    ("fig07_query_types", "Figure 7 — query types"),
    ("fig09_popularity", "Figure 9 — popularity power laws"),
    ("fig10_ccdf", "Figure 10 — article-ranking CCDF"),
    ("secVB_index_storage", "Section V-B — index storage"),
    ("secVB_full_archive", "Section V-B — index storage at full archive scale"),
    ("fig11_interactions", "Figure 11 — interactions per query"),
    ("fig12_traffic", "Figure 12 — traffic per query"),
    ("fig13_hit_ratio", "Figure 13 — cache hit ratio"),
    ("fig14_cache_storage", "Figure 14 — cache storage"),
    ("fig15_hotspots", "Figure 15 — hot-spots"),
    ("tableI_nonindexed", "Table I — non-indexed queries"),
    ("ablation_substrates", "Ablation — substrate independence"),
    ("ablation_shortcuts", "Ablation — popular-content deep links"),
    ("ablation_cache_sweep", "Ablation — LRU capacity sweep"),
    ("ablation_churn", "Ablation — membership churn"),
    ("ablation_scalability", "Ablation — node-population scalability"),
    ("ablation_replication", "Ablation — replica load-spreading"),
    ("baseline_twine", "Baseline — INS/Twine replication"),
]


def assemble_report(results_dir: pathlib.Path) -> str:
    """Concatenate available result files in presentation order.

    Missing sections are listed at the end so partial runs are obvious.
    """
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    pieces = [
        "# Reproduction report — Data Indexing in P2P DHT Networks",
        "",
        f"Assembled from {results_dir}/ (run `pytest benchmarks/ "
        "--benchmark-only` to regenerate).",
        "",
    ]
    missing = []
    known = set()
    for stem, heading in SECTION_ORDER:
        known.add(stem)
        path = results_dir / f"{stem}.txt"
        if not path.is_file():
            missing.append(heading)
            continue
        pieces.append(f"## {heading}")
        pieces.append("")
        pieces.append("```")
        pieces.append(path.read_text().rstrip("\n"))
        pieces.append("```")
        pieces.append("")
    extras = sorted(
        path.stem
        for path in results_dir.glob("*.txt")
        if path.stem not in known
    )
    for stem in extras:
        pieces.append(f"## {stem}")
        pieces.append("")
        pieces.append("```")
        pieces.append((results_dir / f"{stem}.txt").read_text().rstrip("\n"))
        pieces.append("```")
        pieces.append("")
    if missing:
        pieces.append("## Missing sections (bench not run)")
        pieces.append("")
        for heading in missing:
            pieces.append(f"- {heading}")
        pieces.append("")
    return "\n".join(pieces)


def default_results_dir() -> pathlib.Path:
    """The benchmarks/results directory relative to the repo root."""
    here = pathlib.Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "benchmarks" / "results"
        if candidate.is_dir():
            return candidate
    return pathlib.Path("benchmarks/results")


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.report",
        description="Assemble bench outputs into one reproduction report.",
    )
    parser.add_argument(
        "results_dir",
        nargs="?",
        type=pathlib.Path,
        default=None,
        help="directory of bench outputs (default: benchmarks/results)",
    )
    parser.add_argument(
        "-o", "--output", type=pathlib.Path, default=None,
        help="write the report here instead of stdout",
    )
    args = parser.parse_args(argv)
    results_dir = args.results_dir or default_results_dir()
    try:
        report = assemble_report(results_dir)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.output is not None:
        args.output.write_text(report)
        print(f"wrote {args.output} ({len(report):,} chars)")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
