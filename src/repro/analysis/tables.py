"""Plain-text rendering of tables and bar charts.

The benchmark harness reproduces the paper's figures as printed series:
each bench prints the same rows/bars the paper plots, so a reader can
compare shapes side by side with the paper.  These helpers keep that
output consistent.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
    cells = [[str(header) for header in headers]] + [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def bar_chart(
    data: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """Render a horizontal bar chart with proportional bars."""
    if not data:
        raise ValueError("no data")
    peak = max(data.values())
    label_width = max(len(label) for label in data)
    lines = []
    if title:
        lines.append(title)
    for label, value in data.items():
        length = 0 if peak == 0 else int(round(width * value / peak))
        bar = "#" * length
        lines.append(
            f"{label.ljust(label_width)} | {bar} {_format_cell(value)}{unit}"
        )
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
