"""Least-squares power-law fitting on log-log data.

Section V-C: "we have computed (using the minimum square method) from the
plot of BibFinder's author probabilities the line that best fits the
distribution; switching to a linear scale, we obtain the power-law
distribution describing the popularity of each article".

A power law ``p_i = k / i**alpha`` is a straight line on log-log axes:
``log p_i = log k - alpha * log i``.  :func:`fit_power_law` performs the
ordinary least-squares fit of that line and reports the implied ``k`` and
``alpha`` together with the coefficient of determination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a log-log least-squares fit of ``p_i = k / i**alpha``."""

    k: float
    alpha: float
    r_squared: float

    def predict(self, rank: int) -> float:
        """The fitted probability at a given rank."""
        if rank < 1:
            raise ValueError("rank must be >= 1")
        return self.k / rank**self.alpha

    @property
    def is_power_law(self) -> bool:
        """Rough goodness check used by the Figure 9 reproduction."""
        return self.r_squared >= 0.8


def fit_power_law(
    ranks: Sequence[int], probabilities: Sequence[float]
) -> PowerLawFit:
    """Fit ``p_i = k / i**alpha`` by least squares on log-log axes.

    Zero-probability points are skipped (they have no log); at least two
    usable points are required.
    """
    if len(ranks) != len(probabilities):
        raise ValueError("ranks and probabilities must have the same length")
    points = [
        (math.log(rank), math.log(probability))
        for rank, probability in zip(ranks, probabilities)
        if probability > 0
    ]
    if len(points) < 2:
        raise ValueError("need at least two nonzero points to fit")
    n = len(points)
    sum_x = sum(x for x, _ in points)
    sum_y = sum(y for _, y in points)
    sum_xx = sum(x * x for x, _ in points)
    sum_xy = sum(x * y for x, y in points)
    denominator = n * sum_xx - sum_x * sum_x
    if denominator == 0:
        raise ValueError("degenerate x values; cannot fit")
    slope = (n * sum_xy - sum_x * sum_y) / denominator
    intercept = (sum_y - slope * sum_x) / n

    mean_y = sum_y / n
    ss_total = sum((y - mean_y) ** 2 for _, y in points)
    ss_residual = sum((y - (intercept + slope * x)) ** 2 for x, y in points)
    r_squared = 1.0 if ss_total == 0 else 1.0 - ss_residual / ss_total

    return PowerLawFit(k=math.exp(intercept), alpha=-slope, r_squared=r_squared)
