"""Analysis utilities: power-law fitting, distributions, table rendering.

These are the tools Section V uses to turn raw logs into its figures:
least-squares power-law fits on log-log data (Figure 9), CCDF
construction (Figure 10), rank-ordered load curves (Figure 15), and the
textual tables/bars the benchmark harness prints.
"""

from repro.analysis.powerlaw import PowerLawFit, fit_power_law
from repro.analysis.stats import (
    ExactQuantiles,
    LogBucketQuantiles,
    ccdf_points,
    lorenz_skew,
    percentile,
    rank_ordered,
    summarize,
)
from repro.analysis.tables import bar_chart, format_table

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "ExactQuantiles",
    "LogBucketQuantiles",
    "ccdf_points",
    "lorenz_skew",
    "percentile",
    "rank_ordered",
    "summarize",
    "bar_chart",
    "format_table",
]
