"""Distribution helpers: CCDFs, rank curves, and summary statistics."""

from __future__ import annotations

import math
from typing import Sequence


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean, standard deviation, min, max, and median of a sample."""
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((value - mean) ** 2 for value in ordered) / n
    middle = n // 2
    if n % 2:
        median = ordered[middle]
    else:
        median = (ordered[middle - 1] + ordered[middle]) / 2
    return {
        "mean": mean,
        "std": math.sqrt(variance),
        "min": ordered[0],
        "max": ordered[-1],
        "median": median,
        "count": float(n),
    }


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a sample, ``fraction`` in [0, 1].

    ``percentile(xs, 0.5)`` is the nearest-rank median; ``0.0`` maps to
    the minimum and ``1.0`` to the maximum.
    """
    if not values:
        raise ValueError("no values")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction outside [0, 1]")
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    return ordered[max(0, rank - 1)]


def ccdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical complementary CDF: points ``(v, P(X > v))``."""
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    n = len(ordered)
    points: list[tuple[float, float]] = []
    index = 0
    while index < n:
        value = ordered[index]
        # advance past duplicates
        while index < n and ordered[index] == value:
            index += 1
        points.append((value, (n - index) / n))
    return points


def rank_ordered(values: Sequence[float]) -> list[float]:
    """Values sorted descending -- the x-axis ordering of Figure 15."""
    return sorted(values, reverse=True)


def lorenz_skew(values: Sequence[float]) -> float:
    """Fraction of total mass held by the top 10% of values.

    A compact skewness measure for load distributions: 0.1 means
    perfectly balanced; values near 1 mean extreme hot-spots.
    """
    if not values:
        raise ValueError("no values")
    ordered = sorted(values, reverse=True)
    total = sum(ordered)
    if total == 0:
        return 0.0
    top = max(1, len(ordered) // 10)
    return sum(ordered[:top]) / total
