"""Distribution helpers: CCDFs, rank curves, and summary statistics.

Two streaming quantile collectors back the experiment driver's
response-time percentiles:

- :class:`ExactQuantiles` accumulates every sample and reproduces
  :func:`percentile` (nearest-rank) and the arithmetic mean bit-for-bit
  -- the default at paper scale, where 50,000 floats are cheap;
- :class:`LogBucketQuantiles` is a DDSketch-style sketch with
  geometrically spaced buckets: constant memory regardless of sample
  count, with a documented relative error bound, for web-scale runs
  where holding 10^6+ samples per metric is the memory bottleneck.
"""

from __future__ import annotations

import math
from typing import Sequence


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean, standard deviation, min, max, and median of a sample."""
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((value - mean) ** 2 for value in ordered) / n
    middle = n // 2
    if n % 2:
        median = ordered[middle]
    else:
        median = (ordered[middle - 1] + ordered[middle]) / 2
    return {
        "mean": mean,
        "std": math.sqrt(variance),
        "min": ordered[0],
        "max": ordered[-1],
        "median": median,
        "count": float(n),
    }


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a sample, ``fraction`` in [0, 1].

    ``percentile(xs, 0.5)`` is the nearest-rank median; ``0.0`` maps to
    the minimum and ``1.0`` to the maximum.
    """
    if not values:
        raise ValueError("no values")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction outside [0, 1]")
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    return ordered[max(0, rank - 1)]


class ExactQuantiles:
    """Streaming collector with exact nearest-rank percentiles.

    Memory is O(n) -- it keeps every sample -- but ``mean`` and
    ``percentile`` match ``sum(xs)/len(xs)`` and :func:`percentile`
    bit-for-bit, so swapping accumulation lists for this collector
    changes no measured number.
    """

    __slots__ = ("_values",)

    #: Worst-case relative error of ``percentile`` (exact).
    relative_error = 0.0

    def __init__(self) -> None:
        self._values: list[float] = []

    def add(self, value: float) -> None:
        """Record one sample."""
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        """Number of samples recorded so far."""
        return len(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (raises on empty)."""
        values = self._values
        if not values:
            raise ValueError("no values")
        return sum(values) / len(values)

    def percentile(self, fraction: float) -> float:
        """Exact nearest-rank percentile, ``fraction`` in [0, 1]."""
        return percentile(self._values, fraction)

    def merge(self, other: "ExactQuantiles") -> "ExactQuantiles":
        """Fold another collector's samples into this one (in place).

        Returns ``self`` so merges chain; the result is exactly the
        collector that saw both sample streams (order never matters for
        nearest-rank percentiles).
        """
        self._values.extend(other._values)
        return self


class LogBucketQuantiles:
    """DDSketch-style quantile sketch over geometric buckets.

    A sample ``x > 0`` lands in bucket ``ceil(log_gamma(x))``; the
    bucket covering quantile ``q`` (by nearest rank over the counts) is
    reported as the bucket midpoint ``2 * gamma^i / (gamma + 1)``.  A
    bucket spans ``(gamma^(i-1), gamma^i]``, so the estimate is within a
    **relative error of (gamma - 1) / (gamma + 1)** of the true
    nearest-rank value -- just under 1% at the default ``gamma = 1.02``.
    Estimates are additionally clamped to the observed [min, max], and
    the 0.0 / 1.0 fractions return the exactly-tracked min / max.

    Memory is O(number of distinct buckets): bounded by
    ``log_gamma(max/min)`` regardless of sample count (about 1,200
    buckets across nine decades at the default gamma), versus O(n) for
    the accumulation list it replaces.  The mean is tracked exactly via
    a running sum.
    """

    __slots__ = (
        "_gamma",
        "_log_gamma",
        "_buckets",
        "_zero_count",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    #: Samples at or below this are counted in the zero bucket.
    _ZERO_THRESHOLD = 1e-9

    def __init__(self, gamma: float = 1.02) -> None:
        if gamma <= 1.0:
            raise ValueError("gamma must be > 1")
        self._gamma = gamma
        self._log_gamma = math.log(gamma)
        self._buckets: dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def relative_error(self) -> float:
        """Worst-case relative error of ``percentile`` estimates."""
        return (self._gamma - 1.0) / (self._gamma + 1.0)

    def add(self, value: float) -> None:
        """Record one non-negative sample in its logarithmic bucket."""
        if value < 0:
            raise ValueError("sketch accepts non-negative samples only")
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= self._ZERO_THRESHOLD:
            self._zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + 1

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        """Number of samples recorded so far."""
        return self._count

    @property
    def bucket_count(self) -> int:
        """Number of occupied buckets (the memory footprint probe)."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    @property
    def mean(self) -> float:
        """Exact arithmetic mean of the samples (raises on empty)."""
        if not self._count:
            raise ValueError("no values")
        return self._sum / self._count

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile estimate, ``fraction`` in [0, 1]."""
        if not self._count:
            raise ValueError("no values")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction outside [0, 1]")
        if fraction == 0.0:
            return self._min
        if fraction == 1.0:
            return self._max
        rank = max(1, math.ceil(fraction * self._count))
        if rank <= self._zero_count:
            return 0.0
        remaining = rank - self._zero_count
        for index in sorted(self._buckets):
            remaining -= self._buckets[index]
            if remaining <= 0:
                estimate = (
                    2.0 * self._gamma**index / (self._gamma + 1.0)
                )
                return min(max(estimate, self._min), self._max)
        return self._max  # numeric safety; unreachable when counts agree

    # -- cross-process merging ----------------------------------------------
    #
    # Sketches built in worker processes travel back to the parent as
    # plain state dictionaries and fold together there.  Because the
    # merge is bucket-count addition plus exact min/max/sum folding, it
    # is commutative, and associative on everything percentile() reads
    # (counts, buckets, min, max) -- the property suite pins both.

    def merge(self, other: "LogBucketQuantiles") -> "LogBucketQuantiles":
        """Fold another sketch into this one (in place); returns self.

        Both sketches must use the same ``gamma`` -- bucket indices are
        only comparable on one geometric grid.
        """
        if other._gamma != self._gamma:
            raise ValueError("cannot merge sketches with different gamma")
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._zero_count += other._zero_count
        self._count += other._count
        self._sum += other._sum
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        return self

    def to_state(self) -> dict:
        """Plain-data snapshot of the sketch (picklable / JSON-safe).

        Bucket indices become strings so the state survives JSON
        round-trips unchanged; :meth:`from_state` is the exact inverse.
        """
        return {
            "gamma": self._gamma,
            "buckets": {str(index): count for index, count in self._buckets.items()},
            "zero_count": self._zero_count,
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
        }

    @classmethod
    def from_state(cls, state: dict) -> "LogBucketQuantiles":
        """Rebuild a sketch from :meth:`to_state` output."""
        sketch = cls(gamma=state["gamma"])
        sketch._buckets = {
            int(index): count for index, count in state["buckets"].items()
        }
        sketch._zero_count = state["zero_count"]
        sketch._count = state["count"]
        sketch._sum = state["sum"]
        if state["min"] is not None:
            sketch._min = state["min"]
        if state["max"] is not None:
            sketch._max = state["max"]
        return sketch


def ccdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical complementary CDF: points ``(v, P(X > v))``."""
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    n = len(ordered)
    points: list[tuple[float, float]] = []
    index = 0
    while index < n:
        value = ordered[index]
        # advance past duplicates
        while index < n and ordered[index] == value:
            index += 1
        points.append((value, (n - index) / n))
    return points


def rank_ordered(values: Sequence[float]) -> list[float]:
    """Values sorted descending -- the x-axis ordering of Figure 15."""
    return sorted(values, reverse=True)


def lorenz_skew(values: Sequence[float]) -> float:
    """Fraction of total mass held by the top 10% of values.

    A compact skewness measure for load distributions: 0.1 means
    perfectly balanced; values near 1 mean extreme hot-spots.
    """
    if not values:
        raise ValueError("no values")
    ordered = sorted(values, reverse=True)
    total = sum(ordered)
    if total == 0:
        return 0.0
    top = max(1, len(ordered) // 10)
    return sum(ordered[:top]) / total
