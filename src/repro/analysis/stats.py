"""Distribution helpers: CCDFs, rank curves, and summary statistics.

Two streaming quantile collectors back the experiment driver's
response-time percentiles:

- :class:`ExactQuantiles` accumulates every sample and reproduces
  :func:`percentile` (nearest-rank) and the arithmetic mean bit-for-bit
  -- the default at paper scale, where 50,000 floats are cheap;
- :class:`LogBucketQuantiles` is a DDSketch-style sketch with
  geometrically spaced buckets: constant memory regardless of sample
  count, with a documented relative error bound, for web-scale runs
  where holding 10^6+ samples per metric is the memory bottleneck.
"""

from __future__ import annotations

import math
from typing import Sequence


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean, standard deviation, min, max, and median of a sample."""
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((value - mean) ** 2 for value in ordered) / n
    middle = n // 2
    if n % 2:
        median = ordered[middle]
    else:
        median = (ordered[middle - 1] + ordered[middle]) / 2
    return {
        "mean": mean,
        "std": math.sqrt(variance),
        "min": ordered[0],
        "max": ordered[-1],
        "median": median,
        "count": float(n),
    }


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a sample, ``fraction`` in [0, 1].

    ``percentile(xs, 0.5)`` is the nearest-rank median; ``0.0`` maps to
    the minimum and ``1.0`` to the maximum.
    """
    if not values:
        raise ValueError("no values")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction outside [0, 1]")
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    return ordered[max(0, rank - 1)]


class ExactQuantiles:
    """Streaming collector with exact nearest-rank percentiles.

    Memory is O(n) -- it keeps every sample -- but ``mean`` and
    ``percentile`` match ``sum(xs)/len(xs)`` and :func:`percentile`
    bit-for-bit, so swapping accumulation lists for this collector
    changes no measured number.
    """

    __slots__ = ("_values",)

    #: Worst-case relative error of ``percentile`` (exact).
    relative_error = 0.0

    def __init__(self) -> None:
        self._values: list[float] = []

    def add(self, value: float) -> None:
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        values = self._values
        if not values:
            raise ValueError("no values")
        return sum(values) / len(values)

    def percentile(self, fraction: float) -> float:
        return percentile(self._values, fraction)


class LogBucketQuantiles:
    """DDSketch-style quantile sketch over geometric buckets.

    A sample ``x > 0`` lands in bucket ``ceil(log_gamma(x))``; the
    bucket covering quantile ``q`` (by nearest rank over the counts) is
    reported as the bucket midpoint ``2 * gamma^i / (gamma + 1)``.  A
    bucket spans ``(gamma^(i-1), gamma^i]``, so the estimate is within a
    **relative error of (gamma - 1) / (gamma + 1)** of the true
    nearest-rank value -- just under 1% at the default ``gamma = 1.02``.
    Estimates are additionally clamped to the observed [min, max], and
    the 0.0 / 1.0 fractions return the exactly-tracked min / max.

    Memory is O(number of distinct buckets): bounded by
    ``log_gamma(max/min)`` regardless of sample count (about 1,200
    buckets across nine decades at the default gamma), versus O(n) for
    the accumulation list it replaces.  The mean is tracked exactly via
    a running sum.
    """

    __slots__ = (
        "_gamma",
        "_log_gamma",
        "_buckets",
        "_zero_count",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    #: Samples at or below this are counted in the zero bucket.
    _ZERO_THRESHOLD = 1e-9

    def __init__(self, gamma: float = 1.02) -> None:
        if gamma <= 1.0:
            raise ValueError("gamma must be > 1")
        self._gamma = gamma
        self._log_gamma = math.log(gamma)
        self._buckets: dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def relative_error(self) -> float:
        """Worst-case relative error of ``percentile`` estimates."""
        return (self._gamma - 1.0) / (self._gamma + 1.0)

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError("sketch accepts non-negative samples only")
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= self._ZERO_THRESHOLD:
            self._zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + 1

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def bucket_count(self) -> int:
        """Number of occupied buckets (the memory footprint probe)."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    @property
    def mean(self) -> float:
        if not self._count:
            raise ValueError("no values")
        return self._sum / self._count

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile estimate, ``fraction`` in [0, 1]."""
        if not self._count:
            raise ValueError("no values")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction outside [0, 1]")
        if fraction == 0.0:
            return self._min
        if fraction == 1.0:
            return self._max
        rank = max(1, math.ceil(fraction * self._count))
        if rank <= self._zero_count:
            return 0.0
        remaining = rank - self._zero_count
        for index in sorted(self._buckets):
            remaining -= self._buckets[index]
            if remaining <= 0:
                estimate = (
                    2.0 * self._gamma**index / (self._gamma + 1.0)
                )
                return min(max(estimate, self._min), self._max)
        return self._max  # numeric safety; unreachable when counts agree


def ccdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical complementary CDF: points ``(v, P(X > v))``."""
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    n = len(ordered)
    points: list[tuple[float, float]] = []
    index = 0
    while index < n:
        value = ordered[index]
        # advance past duplicates
        while index < n and ordered[index] == value:
            index += 1
        points.append((value, (n - index) / n))
    return points


def rank_ordered(values: Sequence[float]) -> list[float]:
    """Values sorted descending -- the x-axis ordering of Figure 15."""
    return sorted(values, reverse=True)


def lorenz_skew(values: Sequence[float]) -> float:
    """Fraction of total mass held by the top 10% of values.

    A compact skewness measure for load distributions: 0.1 means
    perfectly balanced; values near 1 mean extreme hot-spots.
    """
    if not values:
        raise ValueError("no values")
    ordered = sorted(values, reverse=True)
    total = sum(ordered)
    if total == 0:
        return 0.0
    top = max(1, len(ordered) // 10)
    return sum(ordered[:top]) / total
