"""repro -- Data Indexing in Peer-to-Peer DHT Networks (ICDCS 2004).

A full reproduction of Garcés-Erice, Felber, Biersack, Urvoy-Keller &
Ross: distributed hierarchical indexes that give DHTs broad-query lookup
through query-to-query mappings, with an adaptive distributed cache.

Subpackages, bottom-up:

- :mod:`repro.xmlq` -- semi-structured descriptors, the XPath query
  subset, the covering relation;
- :mod:`repro.net` -- simulated transport with traffic accounting;
- :mod:`repro.dht` -- Chord, Kademlia, Pastry, CAN, and an ideal
  consistent-hashing ring behind one protocol interface;
- :mod:`repro.storage` -- multi-entry replicated DHT storage;
- :mod:`repro.core` -- the paper's contribution: indexing schemes, the
  index service, the lookup engine, the adaptive cache;
- :mod:`repro.workload` -- corpus, popularity, and query models;
- :mod:`repro.sim` -- the evaluation harness (Section V);
- :mod:`repro.analysis` -- fitting and reporting helpers;
- :mod:`repro.baselines` -- the INS/Twine replication comparator.

Cross-cutting: :mod:`repro.perf` holds the cheap always-on performance
counters the hot-path layers increment (parses, normalizations, covering
checks, cache hit rates).

The most common entry points are re-exported here.
"""

from repro import perf
from repro.core import (
    ARTICLE_SCHEMA,
    FieldQuery,
    IndexScheme,
    IndexService,
    LookupEngine,
    Record,
    Schema,
    complex_scheme,
    flat_scheme,
    simple_scheme,
)
from repro.dht import (
    CANNetwork,
    ChordNetwork,
    IdealRing,
    KademliaNetwork,
    PastryNetwork,
    hash_key,
)
from repro.net import SimulatedTransport
from repro.sim import Experiment, ExperimentConfig
from repro.storage import DHTStorage
from repro.workload import CorpusConfig, QueryGenerator, SyntheticCorpus

__version__ = "1.0.0"

__all__ = [
    "ARTICLE_SCHEMA",
    "FieldQuery",
    "IndexScheme",
    "IndexService",
    "LookupEngine",
    "Record",
    "Schema",
    "complex_scheme",
    "flat_scheme",
    "simple_scheme",
    "CANNetwork",
    "ChordNetwork",
    "IdealRing",
    "KademliaNetwork",
    "PastryNetwork",
    "hash_key",
    "SimulatedTransport",
    "Experiment",
    "ExperimentConfig",
    "DHTStorage",
    "CorpusConfig",
    "QueryGenerator",
    "SyntheticCorpus",
    "perf",
    "__version__",
]
