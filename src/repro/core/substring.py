"""Prefix (substring) index classes -- Section IV-C.

"More generic queries can be obtained from more specific queries by
removing only portions of element names (i.e., using substring matching).
For instance, one can create an index with all the files of an author
that start with the letter 'A', the letter 'B', etc."

A :class:`PrefixQuery` constrains one field to a *value prefix* instead
of an exact value.  Its canonical key text marks the value with a
``prefix:`` tag (a bare word under the query lexer), e.g.::

    /article[author[name[prefix:Al]]]

so prefix keys hash and travel exactly like ordinary query keys.  The
covering discipline extends naturally: ``prefix:P`` covers any query
binding the same field to a value starting with ``P`` (and any longer
prefix of it), so prefix classes sit *above* the exact-value entry
classes in the partial order.

:class:`PrefixIndex` materializes the index entries: for each configured
(field, prefix length), every record contributes a mapping from the
prefix key to the record's exact entry-class query for that field.

Since the predicate-algebra refactor the *lookup* side lives in the main
:class:`~repro.core.engine.LookupEngine`: a prefix search is an ordinary
``FieldQuery`` whose constraint is a :class:`~repro.core.predicates.Prefix`
predicate, so it flows through ``search_steps`` and emits the same tracer
``index_step``/``fetch_step`` events and perf counters as every other
lookup.  :meth:`PrefixIndex.search` is a thin convenience wrapper over
that path.  The wider algebra (wildcards, ranges, the trie-over-DHT
index) lives in :mod:`repro.core.predicates` and :mod:`repro.core.trie`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.engine import LookupEngine, SearchTrace
from repro.core.fields import Record, Schema, SchemaError
from repro.core.predicates import PREFIX_TAG, Prefix
from repro.core.query import FieldQuery
from repro.core.service import IndexService

__all__ = ["PREFIX_TAG", "PrefixQuery", "PrefixIndex"]


class PrefixQuery:
    """A single-field prefix constraint (``author`` starts with "Al")."""

    __slots__ = ("schema", "field", "prefix", "_key")

    def __init__(self, schema: Schema, field: str, prefix: str) -> None:
        schema.path_of(field)  # validates the field
        if not prefix:
            raise SchemaError("a prefix constraint cannot be empty")
        self.schema = schema
        self.field = field
        self.prefix = prefix
        self._key: Optional[str] = None

    def key(self) -> str:
        """Canonical text hashed to place this prefix class in the DHT."""
        if self._key is None:
            self._key = self.schema.xpath_for(
                {self.field: f"{PREFIX_TAG}{self.prefix}"}
            )
        return self._key

    def as_field_query(self) -> FieldQuery:
        """The equivalent predicate query (same canonical key)."""
        return FieldQuery(self.schema, {self.field: Prefix(self.prefix)})

    def covers(self, query: FieldQuery) -> bool:
        """True when every record matching ``query`` matches this prefix."""
        value = query.value(self.field)
        return value is not None and value.startswith(self.prefix)

    def covers_record(self, record: Record) -> bool:
        """True when the record's field value starts with the prefix."""
        value = record.get(self.field)
        return value is not None and value.startswith(self.prefix)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrefixQuery):
            return NotImplemented
        return (
            self.schema is other.schema
            and self.field == other.field
            and self.prefix == other.prefix
        )

    def __hash__(self) -> int:
        return hash((id(self.schema), self.field, self.prefix))

    def __repr__(self) -> str:
        return f"PrefixQuery({self.field}^={self.prefix!r})"


class PrefixIndex:
    """Prefix index classes layered on an :class:`IndexService`.

    ``levels`` maps a field name to the prefix lengths to index, e.g.
    ``{"author": [1, 2]}`` creates one-letter and two-letter author
    indexes.  Prefix entries map each prefix key to the exact
    single-field queries it covers, re-using the service's index store,
    so they are ordinary distributed index entries.
    """

    def __init__(
        self, service: IndexService, levels: dict[str, Iterable[int]]
    ) -> None:
        if not levels:
            raise SchemaError("prefix index needs at least one field level")
        self.service = service
        self.levels: dict[str, tuple[int, ...]] = {}
        for field, lengths in levels.items():
            service.schema.path_of(field)
            ordered = tuple(sorted(set(int(n) for n in lengths)))
            if not ordered or ordered[0] < 1:
                raise SchemaError(f"invalid prefix lengths for {field!r}")
            self.levels[field] = ordered

    # -- construction -------------------------------------------------------------

    def queries_for(self, record: Record) -> list[PrefixQuery]:
        """All prefix queries under which a record is indexed."""
        queries = []
        for field, lengths in self.levels.items():
            value = record[field]
            for length in lengths:
                if length <= len(value):
                    queries.append(
                        PrefixQuery(self.service.schema, field, value[:length])
                    )
        return queries

    def insert_record(self, record: Record) -> None:
        """Create this record's prefix index entries.

        Each (prefix -> exact field query) mapping is stored once; the
        chain continues through the ordinary scheme from the exact query.
        Longer configured prefixes are also chained below shorter ones
        (A -> Al -> Alan_Doe), keeping result sets short, exactly like
        the hierarchical schemes do for field combinations.
        """
        for field, lengths in self.levels.items():
            value = record[field]
            exact = FieldQuery.of_record(record, [field])
            previous: Optional[PrefixQuery] = None
            for length in lengths:
                if length > len(value):
                    break
                current = PrefixQuery(self.service.schema, field, value[:length])
                if previous is not None:
                    self.service.index_store.put(previous.key(), current.key())
                previous = current
            if previous is not None:
                self.service.index_store.put(previous.key(), exact.key())

    def insert_all(self, records: Iterable[Record]) -> None:
        """Create prefix index entries for a batch of records."""
        for record in records:
            self.insert_record(record)

    # -- lookup ----------------------------------------------------------------------

    def explore(self, field: str, prefix: str, user: str = "user:prefix") -> list[str]:
        """One interactive step: the entries under a prefix key."""
        query = PrefixQuery(self.service.schema, field, prefix)
        answer = self.service.query_key(query.key(), user)
        self.service.transport.meter.end_query()
        return answer.entries + answer.shortcuts

    def search(
        self,
        engine: LookupEngine,
        field: str,
        prefix: str,
        target: Record,
    ) -> SearchTrace:
        """Full search from partial information: prefix -> ... -> file.

        Delegates to the main lookup engine with a ``Prefix`` predicate
        query, so prefix searches traverse the exact same state machine
        -- interactions, tracer ``index_step``/``fetch_step`` events and
        perf counters included -- as ordinary chain lookups.
        """
        query = PrefixQuery(self.service.schema, field, prefix)
        if not query.covers_record(target):
            raise SchemaError(
                f"{query!r} does not cover the target record {target!r}"
            )
        return engine.search(query.as_field_query(), target)
