"""Interactive search sessions -- Section IV-B.

"The lookup process can be interactive, i.e., the user directs the search
and restricts its query at each step, or automated..."

:class:`InteractiveSession` models the interactive mode: the user starts
from a broad query, inspects the result set a node returned, picks one of
the more specific queries, and descends -- with the ability to back up
and explore a different branch of the partial order.  Every step is a
real message exchange through the index service, so traffic and per-node
load are metered exactly like automated searches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.fields import Record, Schema
from repro.core.query import FieldQuery, QueryParseError
from repro.core.service import IndexService


class SessionError(RuntimeError):
    """Raised on invalid navigation (bad choice index, fetch on non-MSD)."""


@dataclass
class SessionStep:
    """One visited level: the query asked and the entries it returned."""

    query: FieldQuery
    entries: list[str] = field(default_factory=list)
    shortcuts: list[str] = field(default_factory=list)

    @property
    def choices(self) -> list[str]:
        """Everything the user can descend into."""
        return self.entries + self.shortcuts


class InteractiveSession:
    """A user-driven walk down the query partial order."""

    def __init__(
        self,
        service: IndexService,
        start: Union[FieldQuery, str],
        user: str = "user:session",
    ) -> None:
        self.service = service
        self.user = user
        if not service.transport.is_registered(user):
            service.transport.register(user, lambda message: None)
        if isinstance(start, str):
            start = FieldQuery.parse(service.schema, start)
        self._stack: list[SessionStep] = []
        self._fetched: Optional[str] = None
        self._descend(start)

    # -- state --------------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self.service.schema

    @property
    def current(self) -> SessionStep:
        return self._stack[-1]

    @property
    def depth(self) -> int:
        """How many levels deep the session is (1 = the initial query)."""
        return len(self._stack)

    @property
    def history(self) -> list[FieldQuery]:
        """Queries asked so far, in order."""
        return [step.query for step in self._stack]

    @property
    def at_file_level(self) -> bool:
        """True when the current query is an MSD: the file is one fetch away."""
        return self.current.query.is_msd()

    @property
    def exhausted(self) -> bool:
        """True when the current level offers nothing to descend into."""
        return not self.at_file_level and not self.current.choices

    # -- navigation -----------------------------------------------------------------

    def choices(self) -> list[str]:
        """The result set at the current level (what the user reads)."""
        return self.current.choices

    def refine(self, choice: Union[int, str]) -> "InteractiveSession":
        """Descend into one of the current level's entries.

        ``choice`` is an index into :meth:`choices` or the entry text
        itself.  Returns self for chaining.
        """
        options = self.current.choices
        if isinstance(choice, int):
            if not 0 <= choice < len(options):
                raise SessionError(
                    f"choice {choice} out of range (0..{len(options) - 1})"
                )
            selected = options[choice]
        else:
            if choice not in options:
                raise SessionError(f"not among the current results: {choice!r}")
            selected = choice
        try:
            query = FieldQuery.parse(self.schema, selected)
        except QueryParseError as error:
            raise SessionError(f"unusable entry {selected!r}: {error}") from error
        if not self.current.query.covers(query):
            raise SessionError(
                "refinement must be covered by the current query"
            )
        self._descend(query)
        return self

    def back(self) -> "InteractiveSession":
        """Return to the previous level (the initial level is permanent)."""
        if len(self._stack) <= 1:
            raise SessionError("already at the initial query")
        self._stack.pop()
        return self

    def fetch(self) -> bool:
        """Retrieve the file at an MSD level; returns whether it exists."""
        if not self.at_file_level:
            raise SessionError("only a most-specific query resolves to a file")
        _, found = self.service.fetch_file(self.current.query, self.user)
        self.service.transport.meter.end_query()
        self._fetched = self.current.query.key() if found else None
        return found

    @property
    def fetched_msd(self) -> Optional[str]:
        """Key of the file retrieved by the last successful fetch."""
        return self._fetched

    # -- conveniences -----------------------------------------------------------------

    def refine_towards(self, record: Record) -> "InteractiveSession":
        """Pick the entry matching a known record (scripted interaction)."""
        for index, entry in enumerate(self.current.choices):
            try:
                query = FieldQuery.parse(self.schema, entry)
            except QueryParseError:
                continue
            if query.covers_record(record):
                return self.refine(index)
        raise SessionError(f"no current entry matches {record!r}")

    def _descend(self, query: FieldQuery) -> None:
        if query.is_msd():
            # The MSD level has no further entries; fetch() finishes it.
            self._stack.append(SessionStep(query=query))
            return
        answer = self.service.query(query, self.user)
        self.service.transport.meter.end_query()
        self._stack.append(
            SessionStep(
                query=query, entries=answer.entries, shortcuts=answer.shortcuts
            )
        )

    def __repr__(self) -> str:
        return (
            f"InteractiveSession(depth={self.depth}, "
            f"query={self.current.query.key()!r}, "
            f"choices={len(self.current.choices)})"
        )
