"""The distributed index service: node-side resolution over DHT storage.

The service glues the pieces of Section IV together:

- records are inserted by storing the *file* at the node responsible for
  ``h(MSD)`` (the Publication level of Figure 4) and one index mapping
  ``(q; q_i)`` per scheme edge at the node responsible for ``h(q)``;
- ``lookup(q)`` resolves the node responsible for ``h(q)`` and returns
  the mappings stored there, together with any cached shortcuts for
  ``q`` (prefixed entries in the response payload);
- shortcut creation (``insert_shortcut``) and record deletion with
  recursive index cleanup (Section IV-C) are supported.

All user-visible operations travel as messages through the simulated
transport so that byte counts (Figure 12) and per-node load (Figure 15)
are measured, not estimated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:
    from repro.sec.identity import NodeIdentity
    from repro.sec.trust import TrustLedger

from repro.core.cache import CachePolicy, NodeCache
from repro.core.fields import Record, Schema
from repro.core.query import FieldQuery
from repro.core.scheme import IndexScheme
from repro.net.message import Message, MessageKind
from repro.net.transport import DeliveryError, SimulatedTransport
from repro.perf import counters
from repro.storage.store import DHTStorage

#: Prefix marking cached-shortcut entries inside a query response payload;
#: it costs one byte on the wire, modelling the entry-type flag.
SHORTCUT_MARK = "~"
#: Value stored in the file store to represent the article content.
FILE_MARK = "file"


class IndexServiceError(RuntimeError):
    """Raised on inconsistent service usage (unknown records, etc.)."""


@dataclass
class QueryAnswer:
    """Structured form of one node's answer to a query."""

    node: int
    entries: list[str]
    shortcuts: list[str]
    file_found: bool

    @property
    def empty(self) -> bool:
        return not (self.entries or self.shortcuts or self.file_found)


class IndexService:
    """Insertion, resolution, deletion, and caching for one overlay."""

    def __init__(
        self,
        schema: Schema,
        scheme: IndexScheme,
        index_store: DHTStorage,
        file_store: DHTStorage,
        transport: SimulatedTransport,
        cache_policy: CachePolicy = CachePolicy.NONE,
        cache_capacity: Optional[int] = None,
        local_nodes: Optional[Iterable[int]] = None,
        trust: Optional["TrustLedger"] = None,
        entry_identity: Optional["NodeIdentity"] = None,
        trusted_publishers: Optional[Iterable[bytes]] = None,
    ) -> None:
        """``local_nodes`` restricts which substrate nodes this service
        instance *hosts* (registers endpoints and caches for).  ``None``
        -- the simulation default -- hosts every node in the overlay; a
        networked daemon passes its own node id(s) so remote node names
        resolve over the wire instead of to local handlers, and a pure
        client passes an empty set to host none at all.

        ``trust`` attaches a :class:`repro.sec.trust.TrustLedger`:
        replica failover then tries trusted replicas first, every
        exchange outcome feeds the ledger (signature failures hardest),
        and an *empty* query answer is cross-checked against the key's
        next replica before being believed -- a replica that withholds
        entries another replica still serves is recorded as contradicted
        (withholding passes every signature check, so replication is the
        only defence against it).  ``None`` -- the default -- adds no
        per-exchange work at all.

        ``entry_identity`` switches on publisher-signed index entries
        (:mod:`repro.sec.entries`): every mapping this service inserts
        is stored as an attestation -- the raw entry plus this
        identity's public key and an ed25519 signature over
        ``(index key, entry)`` -- and every query answer is verified
        against the trusted publisher set, dropping entries that are
        unattested, forged, or signed by an untrusted key.  This is the
        content-authentication layer that catches a Byzantine responder
        *fabricating* entries: transport signatures cannot (a lying
        node signs its forgery with its own valid key).
        ``trusted_publishers`` extends the accepted set beyond this
        service's own key (e.g. other publishers in a shared overlay);
        passing it without ``entry_identity`` builds a verify-only
        service that publishes nothing.
        """
        if index_store.protocol is not file_store.protocol:
            raise IndexServiceError(
                "index and file stores must share one DHT substrate"
            )
        self.local_nodes = (
            None if local_nodes is None else frozenset(local_nodes)
        )
        self.schema = schema
        self.scheme = scheme
        self.index_store = index_store
        self.file_store = file_store
        self.transport = transport
        self.cache_policy = cache_policy
        self.cache_capacity = cache_capacity if cache_policy is CachePolicy.LRU else None
        self.caches: dict[int, NodeCache] = {}
        # Optional durability hook (repro.storage.durable): shortcut
        # cache inserts are journaled so a restarted node keeps its
        # warmed cache.  None = in-memory only (the default).
        self.journal = None
        self._registered: set[str] = set()
        self.trust = trust
        self.entry_identity = entry_identity
        #: Publisher keys whose entry attestations are accepted, or None
        #: when entry authentication is off (answers pass unverified).
        self._trusted_publishers: Optional[frozenset[bytes]] = None
        if entry_identity is not None or trusted_publishers is not None:
            accepted = set(trusted_publishers or ())
            if entry_identity is not None:
                accepted.add(bytes(entry_identity.public_key))
            self._trusted_publishers = frozenset(accepted)
        # With replication > 1, queries rotate across the key's replicas
        # -- the paper's hot-spot relief: "any optimization of the
        # underlying P2P DHT substrate for hot-spot avoidance (e.g.,
        # using replication) will apply to index accesses as well".
        self._replica_rotation = 0
        self.register_nodes()

    # -- node endpoints --------------------------------------------------------

    @staticmethod
    def endpoint_name(node: int) -> str:
        """Transport endpoint name of an index node."""
        return f"node:{node:x}"

    def register_nodes(self) -> None:
        """Create caches and transport endpoints for the hosted nodes.

        Hosts every substrate node unless ``local_nodes`` narrowed the
        set (networked daemons host only their own node).
        """
        for node in self.index_store.protocol.node_ids:
            if self.local_nodes is not None and node not in self.local_nodes:
                continue
            name = self.endpoint_name(node)
            if name in self._registered:
                continue
            self.caches[node] = NodeCache(self.cache_capacity)
            self.transport.register(name, self._make_handler(node))
            self._registered.add(name)

    def unregister_node(self, node: int) -> None:
        """Drop a departed node's endpoint and cache.

        The node's stored index entries are handled by the storage layer
        (replication and/or rebalancing); its cache contents are simply
        lost, as they would be in a real departure.
        """
        name = self.endpoint_name(node)
        if name in self._registered:
            self.transport.unregister(name)
            self._registered.discard(name)
        self.caches.pop(node, None)

    def _make_handler(self, node: int):
        def handle(message: Message) -> Optional[Message]:
            if message.kind is MessageKind.QUERY_REQUEST:
                return self._handle_query(node, message)
            if message.kind is MessageKind.FILE_REQUEST:
                return self._handle_file_request(node, message)
            if message.kind is MessageKind.CACHE_INSERT:
                return self._handle_cache_insert(node, message)
            return None

        return handle

    #: Response marker indicating the queried key is a stored file's MSD.
    FILE_FOUND_MARK = "!file"

    def _handle_query(self, node: int, message: Message) -> Message:
        (query_key,) = message.payload
        # Strictly node-local state: what this peer physically stores.
        entries = list(self.index_store.values_at(node, query_key))
        # "That node may return f if q is the most specific query for f"
        # (Section IV-B): a query key that is a stored file's descriptor
        # is answered with the file marker.
        if self.file_store.values_at(node, query_key):
            entries.insert(0, self.FILE_FOUND_MARK)
        shortcuts: list[str] = []
        if self.cache_policy.caches_enabled:
            entry = self.caches[node].lookup(query_key)
            if entry is not None:
                shortcuts = list(entry)
        payload = tuple(entries) + tuple(
            SHORTCUT_MARK + shortcut for shortcut in shortcuts
        )
        return message.reply(MessageKind.QUERY_RESPONSE, payload)

    def _handle_file_request(self, node: int, message: Message) -> Message:
        (msd_key,) = message.payload
        stored = self.file_store.values_at(node, msd_key)
        if stored:
            # The response stands for the file descriptor/handle; article
            # content transfer is out of scope of the traffic figures.
            return message.reply(MessageKind.FILE_RESPONSE, (msd_key,))
        return message.reply(MessageKind.FILE_RESPONSE, ())

    def _handle_cache_insert(self, node: int, message: Message) -> Optional[Message]:
        query_key, msd_key = message.payload
        if self.caches[node].insert(query_key, msd_key) and (
            self.journal is not None
        ):
            self.journal.record_cache_insert(node, query_key, msd_key)
        return None

    # -- record lifecycle -----------------------------------------------------------

    def insert_record(self, record: Record, file_payload: str = FILE_MARK) -> FieldQuery:
        """Store a record's file and create all its index mappings.

        Returns the record's most specific query.
        """
        msd = FieldQuery.msd_of(record)
        self.file_store.put(msd.key(), file_payload)
        for source, target in self.scheme.mappings_for(record):
            self.index_store.put(
                source.key(), self._stored_entry(source.key(), target.key())
            )
        return msd

    def insert_shortcut_mapping(self, record: Record, fields) -> None:
        """Add a permanent deep-link index entry (Section IV-C)."""
        source, target = self.scheme.shortcut_mapping(record, fields)
        self.index_store.put(
            source.key(), self._stored_entry(source.key(), target.key())
        )

    def _stored_entry(self, source_key: str, target_key: str) -> str:
        """The stored form of one index mapping: the raw target key, or
        -- with entry authentication on -- its publisher attestation.
        Deterministic (ed25519 signatures are), so deletion recomputes
        the same string to find the value it removes."""
        if self.entry_identity is None:
            return target_key
        from repro.sec.entries import attest_entry

        return attest_entry(source_key, target_key, self.entry_identity)

    def delete_record(self, record: Record) -> None:
        """Delete a record and recursively clean dangling index entries.

        A mapping ``(q; q_i)`` is removed only when ``q_i`` no longer
        resolves to anything (no file and no remaining index entries), so
        entries shared with other records survive (e.g. the
        conference->conference/year entry of Figure 5 serves many files).
        """
        msd = FieldQuery.msd_of(record)
        if msd.key() not in self.file_store:
            raise IndexServiceError(f"record not stored: {record!r}")
        self.file_store.remove_key(msd.key())
        mappings = self.scheme.mappings_for(record)
        # Most specific targets first, so emptiness propagates upward.
        mappings.sort(key=lambda pair: len(pair[1].fields), reverse=True)
        for source, target in mappings:
            if self._resolvable(target):
                continue
            source_key = source.key()
            stored = self._stored_entry(source_key, target.key())
            if (
                source_key in self.index_store
                and stored in self.index_store.values(source_key)
            ):
                self.index_store.remove_value(source_key, stored)

    def _resolvable(self, query: FieldQuery) -> bool:
        key = query.key()
        if key in self.file_store:
            return True
        return key in self.index_store and bool(self.index_store.values(key))

    # -- user-facing operations (message-based) -----------------------------------------

    def query(self, query: FieldQuery, user: str) -> QueryAnswer:
        """Ask the node responsible for ``h(q)`` to resolve ``q``."""
        return self.query_key(query.key(), user)

    def query_key(self, key: str, user: str) -> QueryAnswer:
        """Resolve a raw canonical key (also used by prefix indexes).

        Failure-aware: when the chosen replica is crashed or departed
        (typed :class:`DeliveryError` with a persistent reason), the
        request *fails over* to the key's next replica before giving up
        -- the DHash/PAST-style redundancy the paper assumes.  Transient
        losses (dropped messages) are re-raised for the caller's retry
        logic, since the same node will answer a retransmission.
        """
        counters.service_queries += 1
        tracer = self.transport.tracer
        last_error: Optional[DeliveryError] = None
        order = self._replica_order(self.index_store, key)
        #: Empty answers awaiting a second opinion (trust ledger only):
        #: an empty answer passes every signature check whether the
        #: replica honestly holds nothing or maliciously withholds, so
        #: it is only believed once another replica agrees (or none are
        #: left to ask).  A later non-empty answer contradicts them.
        withheld: list[QueryAnswer] = []
        for attempt, node in enumerate(order):
            if attempt:
                counters.service_failovers += 1
                if tracer is not None:
                    tracer.failover(
                        key=key, node=node, attempt=attempt,
                        level="service", use_current=True,
                    )
            request = Message(
                kind=MessageKind.QUERY_REQUEST,
                source=user,
                destination=self.endpoint_name(node),
                payload=(key,),
            )
            try:
                response = self.transport.send(request)
            except DeliveryError as error:
                if self.trust is not None:
                    self._trust_penalty(node, error)
                if not error.retry_elsewhere:
                    raise
                last_error = error
                continue
            assert response is not None
            if self.trust is not None:
                self.trust.record_success(self.endpoint_name(node))
            self.transport.meter.touch_node(self.endpoint_name(node))
            answer = self._parse_answer(node, key, response)
            if (
                self.trust is not None
                and answer.empty
                and attempt + 1 < len(order)
            ):
                withheld.append(answer)
                continue
            if withheld and not answer.empty:
                for earlier in withheld:
                    self._contradiction_penalty(earlier.node)
            return answer
        if withheld:
            # Every remaining replica erred; the uncorroborated empty
            # answer is still an answer.
            return withheld[0]
        assert last_error is not None
        raise last_error

    def _parse_answer(
        self, node: int, key: str, response: Message
    ) -> QueryAnswer:
        """Decode one query response payload into a structured answer.

        With entry authentication on, each index entry must be a valid
        publisher attestation over ``(key, entry)`` by a trusted key;
        anything else is dropped (``sec_entry_verify_failures``) and the
        serving node takes a verify-failure trust penalty.  Shortcut
        entries are cache *hints* -- the engine verifies them by
        following them -- and pass unauthenticated.
        """
        entries: list[str] = []
        shortcuts: list[str] = []
        file_found = False
        rejected = 0
        for item in response.payload:
            if item == IndexService.FILE_FOUND_MARK:
                file_found = True
            elif item.startswith(SHORTCUT_MARK):
                shortcuts.append(item[len(SHORTCUT_MARK):])
            elif self._trusted_publishers is not None:
                from repro.sec.entries import verify_entry

                entry = verify_entry(key, item, self._trusted_publishers)
                if entry is None:
                    rejected += 1
                else:
                    entries.append(entry)
            else:
                entries.append(item)
        if rejected:
            tracer = self.transport.tracer
            if tracer is not None:
                tracer.sec_verify_fail(
                    destination=self.endpoint_name(node), role="entry"
                )
            if self.trust is not None:
                score = self.trust.record_verify_failure(
                    self.endpoint_name(node)
                )
                counters.sec_trust_updates += 1
                if tracer is not None:
                    tracer.trust_update(
                        peer=self.endpoint_name(node),
                        score=score,
                        cause="verify_failure",
                    )
        return QueryAnswer(
            node=node, entries=entries, shortcuts=shortcuts,
            file_found=file_found,
        )

    def _contradiction_penalty(self, node: int) -> None:
        """Record that ``node`` withheld an answer another replica holds."""
        trust = self.trust
        assert trust is not None
        name = self.endpoint_name(node)
        score = trust.record_contradiction(name)
        counters.sec_contradictions += 1
        counters.sec_trust_updates += 1
        tracer = self.transport.tracer
        if tracer is not None:
            tracer.trust_update(
                peer=name, score=score, cause="contradiction"
            )

    def _replica_order(self, store: DHTStorage, key: str) -> list[int]:
        """The replicas of a key in the order this request tries them.

        With ``replication == 1`` this is just the responsible node.
        With more replicas, the starting point rotates round-robin,
        spreading the load of hot keys across their replica sets
        (Section V-g); the remaining replicas follow as failover
        candidates.
        """
        nodes = store.responsible_nodes(key)
        if len(nodes) == 1:
            return nodes
        self._replica_rotation += 1
        start = self._replica_rotation % len(nodes)
        order = nodes[start:] + nodes[:start]
        if self.trust is not None:
            order = self._trusted_first(order)
        return order

    def _trusted_first(self, order: list[int]) -> list[int]:
        """Stable partition of a replica order: trusted replicas first.

        Rotation still decides the order *within* each trust class, so
        hot-key load stays spread; distrusted replicas remain reachable
        as last-resort failover candidates rather than being banned
        (trust is a ranking signal, not a membership decision).
        """
        trust = self.trust
        assert trust is not None
        trusted = [
            node for node in order if trust.is_trusted(self.endpoint_name(node))
        ]
        if len(trusted) == len(order):
            return order
        flagged = [
            node
            for node in order
            if not trust.is_trusted(self.endpoint_name(node))
        ]
        return trusted + flagged

    def _trust_penalty(self, node: int, error: DeliveryError) -> None:
        """Feed a failed exchange into the trust ledger (trust attached).

        Signature failures are near-certain evidence of malice and cut
        trust hardest; drops/timeouts are weak evidence (benign loss
        looks identical) and shave it lightly.  Crashes and departures
        are the benign-failure model's territory and not penalized.
        """
        trust = self.trust
        assert trust is not None
        name = self.endpoint_name(node)
        if error.reason == DeliveryError.VERIFY_FAILED:
            score = trust.record_verify_failure(name)
            cause = "verify_failure"
        elif error.reason in (DeliveryError.DROPPED, DeliveryError.TIMEOUT):
            score = trust.record_timeout(name)
            cause = "timeout"
        else:
            return
        counters.sec_trust_updates += 1
        tracer = self.transport.tracer
        if tracer is not None:
            tracer.trust_update(peer=name, score=score, cause=cause)

    def _pick_replica(self, store: DHTStorage, key: str) -> int:
        """The first replica this request would try (see _replica_order)."""
        return self._replica_order(store, key)[0]

    def fetch_file(self, msd: FieldQuery, user: str) -> tuple[int, bool]:
        """Retrieve the file stored under an MSD; returns (node, found).

        Fails over across the MSD's replicas exactly like
        :meth:`query_key`; transient drops propagate for retry.
        """
        counters.service_file_fetches += 1
        tracer = self.transport.tracer
        key = msd.key()
        last_error: Optional[DeliveryError] = None
        for attempt, node in enumerate(self._replica_order(self.file_store, key)):
            if attempt:
                counters.service_failovers += 1
                if tracer is not None:
                    tracer.failover(
                        key=key, node=node, attempt=attempt,
                        level="service", use_current=True,
                    )
            request = Message(
                kind=MessageKind.FILE_REQUEST,
                source=user,
                destination=self.endpoint_name(node),
                payload=(key,),
            )
            try:
                response = self.transport.send(request)
            except DeliveryError as error:
                if self.trust is not None:
                    self._trust_penalty(node, error)
                if not error.retry_elsewhere:
                    raise
                last_error = error
                continue
            assert response is not None
            if self.trust is not None:
                self.trust.record_success(self.endpoint_name(node))
            self.transport.meter.touch_node(self.endpoint_name(node))
            return node, bool(response.payload)
        assert last_error is not None
        raise last_error

    def insert_shortcut(self, node: int, query_key: str, msd_key: str, user: str) -> None:
        """Create a cache shortcut on a node (counted as cache traffic).

        Best-effort: shortcut creation is an optimization, so a delivery
        failure (node crashed, message lost) is swallowed -- the lookup
        already succeeded, and a later lookup will re-seed the cache.
        """
        if not self.cache_policy.caches_enabled:
            return
        request = Message(
            kind=MessageKind.CACHE_INSERT,
            source=user,
            destination=self.endpoint_name(node),
            payload=(query_key, msd_key),
        )
        try:
            self.transport.send(request)
        except DeliveryError:
            pass

    # -- user-facing operations (event-kernel, continuation-passing) --------------------
    #
    # The async variants mirror their synchronous counterparts exchange
    # for exchange -- same counters, same replica failover policy -- but
    # deliver through the transport's virtual clock, so N lookups can be
    # in flight at once and each request pays its overlay routing delay
    # (``route_hops`` legs, sampled by the bound latency model).  Results
    # and delivery failures arrive via continuations instead of
    # return/raise.  Per-query node touching is left to the driver (the
    # meter's current-query set cannot tell overlapping lookups apart).

    def query_async(
        self,
        query: FieldQuery,
        user: str,
        on_done: Callable[[QueryAnswer], None],
        on_error: Callable[[DeliveryError], None],
    ) -> None:
        """Resolve ``q`` over the virtual clock; see :meth:`query`."""
        self.query_key_async(query.key(), user, on_done, on_error)

    def query_key_async(
        self,
        key: str,
        user: str,
        on_done: Callable[[QueryAnswer], None],
        on_error: Callable[[DeliveryError], None],
    ) -> None:
        """Scheduled variant of :meth:`query_key` with replica failover.

        Failover works exactly like the synchronous path, spread over
        virtual time: a persistent failure (crashed/departed replica)
        becomes an error event one request leg later, at which point the
        next replica is tried; transient drops propagate to ``on_error``
        for the caller's retry logic.
        """
        counters.service_queries += 1
        order = self._replica_order(self.index_store, key)
        hops = self._route_hops(self.index_store, key)
        tracer = self.transport.tracer
        # Failover attempts fire from kernel continuations, long after
        # other lookups moved the tracer's current-span pointer: capture
        # the requesting span now and re-activate it per attempt.
        span = tracer.current if tracer is not None else None
        # Second-opinion state, mirroring the synchronous path: empty
        # answers are deferred until another replica corroborates them.
        withheld: list[QueryAnswer] = []

        def attempt(index: int) -> None:
            node = order[index]
            if index:
                counters.service_failovers += 1
                if tracer is not None:
                    tracer.failover(
                        key=key, node=node, attempt=index,
                        level="service", ref=span,
                    )
            request = Message(
                kind=MessageKind.QUERY_REQUEST,
                source=user,
                destination=self.endpoint_name(node),
                payload=(key,),
                route_hops=hops,
            )

            def on_result(response: Optional[Message]) -> None:
                assert response is not None
                if self.trust is not None:
                    self.trust.record_success(self.endpoint_name(node))
                if tracer is not None:
                    with tracer.activated(span):
                        answer = self._parse_answer(node, key, response)
                else:
                    answer = self._parse_answer(node, key, response)
                if (
                    self.trust is not None
                    and answer.empty
                    and index + 1 < len(order)
                ):
                    withheld.append(answer)
                    attempt(index + 1)
                    return
                if withheld and not answer.empty:
                    if tracer is not None:
                        with tracer.activated(span):
                            for earlier in withheld:
                                self._contradiction_penalty(earlier.node)
                    else:
                        for earlier in withheld:
                            self._contradiction_penalty(earlier.node)
                on_done(answer)

            def on_fail(error: DeliveryError) -> None:
                if self.trust is not None:
                    # Continuations run long after other lookups moved the
                    # current span; re-activate ours for the trust event.
                    if tracer is not None:
                        with tracer.activated(span):
                            self._trust_penalty(node, error)
                    else:
                        self._trust_penalty(node, error)
                if error.retry_elsewhere and index + 1 < len(order):
                    attempt(index + 1)
                elif withheld:
                    # Every remaining replica erred; the uncorroborated
                    # empty answer is still an answer.
                    on_done(withheld[0])
                else:
                    on_error(error)

            if tracer is not None:
                with tracer.activated(span):
                    self.transport.send_async(request, on_result, on_fail)
            else:
                self.transport.send_async(request, on_result, on_fail)

        attempt(0)

    def fetch_file_async(
        self,
        msd: FieldQuery,
        user: str,
        on_done: Callable[[tuple[int, bool]], None],
        on_error: Callable[[DeliveryError], None],
    ) -> None:
        """Scheduled variant of :meth:`fetch_file`; yields (node, found)."""
        counters.service_file_fetches += 1
        key = msd.key()
        order = self._replica_order(self.file_store, key)
        hops = self._route_hops(self.file_store, key)
        tracer = self.transport.tracer
        span = tracer.current if tracer is not None else None

        def attempt(index: int) -> None:
            node = order[index]
            if index:
                counters.service_failovers += 1
                if tracer is not None:
                    tracer.failover(
                        key=key, node=node, attempt=index,
                        level="service", ref=span,
                    )
            request = Message(
                kind=MessageKind.FILE_REQUEST,
                source=user,
                destination=self.endpoint_name(node),
                payload=(key,),
                route_hops=hops,
            )

            def on_result(response: Optional[Message]) -> None:
                assert response is not None
                if self.trust is not None:
                    self.trust.record_success(self.endpoint_name(node))
                on_done((node, bool(response.payload)))

            def on_fail(error: DeliveryError) -> None:
                if self.trust is not None:
                    if tracer is not None:
                        with tracer.activated(span):
                            self._trust_penalty(node, error)
                    else:
                        self._trust_penalty(node, error)
                if error.retry_elsewhere and index + 1 < len(order):
                    attempt(index + 1)
                else:
                    on_error(error)

            if tracer is not None:
                with tracer.activated(span):
                    self.transport.send_async(request, on_result, on_fail)
            else:
                self.transport.send_async(request, on_result, on_fail)

        attempt(0)

    def insert_shortcut_async(
        self, node: int, query_key: str, msd_key: str, user: str
    ) -> None:
        """Scheduled, fire-and-forget variant of :meth:`insert_shortcut`.

        The shortcut lands one request leg after ``now``; delivery
        failures are swallowed exactly like the synchronous path (a later
        lookup re-seeds the cache).
        """
        if not self.cache_policy.caches_enabled:
            return
        request = Message(
            kind=MessageKind.CACHE_INSERT,
            source=user,
            destination=self.endpoint_name(node),
            payload=(query_key, msd_key),
        )
        self.transport.send_async(
            request, lambda response: None, lambda error: None
        )

    def _route_hops(self, store: DHTStorage, key: str) -> int:
        """Overlay legs a request for ``key`` traverses (>= 1).

        ``LookupResult.hops`` counts routing steps beyond the first
        contacted node, so a request costs ``1 + hops`` legs: user to
        entry node, then along the overlay route.  Responses return
        directly (one leg) since the requester's address is known.
        """
        result = store.protocol.lookup(store.numeric_key(key))
        return 1 + result.hops

    # -- statistics ---------------------------------------------------------------------

    def cache_sizes(self) -> dict[int, int]:
        """Cached keys per node (Figure 14)."""
        return {node: len(cache) for node, cache in self.caches.items()}

    def cache_occupancy(self) -> tuple[int, int, int]:
        """(empty caches, full caches, total caches) across nodes."""
        empty = sum(1 for cache in self.caches.values() if len(cache) == 0)
        full = sum(1 for cache in self.caches.values() if cache.is_full)
        return empty, full, len(self.caches)

    def index_keys_per_node(self) -> dict[int, int]:
        """Regular (non-cache) entries per node, incl. stored files."""
        per_node: dict[int, int] = {}
        for node in self.index_store.protocol.node_ids:
            per_node[node] = self.index_store.entries_on_node(
                node
            ) + self.file_store.entries_on_node(node)
        return per_node

    def index_storage_bytes(self) -> int:
        """Bytes dedicated to index mappings (excludes file content)."""
        return self.index_store.storage_bytes()
