"""Field queries: the working form of queries inside the index layer.

A :class:`FieldQuery` is a conjunction of ``field = value`` constraints
over a :class:`repro.core.fields.Schema`.  It is the structured twin of a
canonical XPath expression: ``key()`` produces the normalized XPath text
whose hash places the query in the DHT, and :meth:`parse` recovers the
structure from that text.

Covering (Section III-B) is simple and exact on field queries: ``q'``
covers ``q`` if and only if the constraints of ``q'`` are a subset of the
constraints of ``q``.  The equivalence of this rule with the general
tree-pattern homomorphism of :mod:`repro.xmlq.pattern` is verified by
property-based tests.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Mapping, Optional

from repro.core.fields import Record, Schema, SchemaError
from repro.perf import counters
from repro.xmlq.astnodes import LocationPath, LocationStep
from repro.xmlq.pattern import TreePattern, pattern_from_xpath
from repro.xmlq.xpparser import parse_xpath


class QueryParseError(ValueError):
    """Raised when query text cannot be interpreted against a schema."""


class FieldQuery:
    """An immutable conjunction of field constraints over a schema."""

    __slots__ = ("schema", "_items", "_key", "_hash")

    def __init__(self, schema: Schema, constraints: Mapping[str, str]) -> None:
        if not constraints:
            raise SchemaError("a query needs at least one field constraint")
        for field_name in constraints:
            schema.path_of(field_name)  # validates field names
        self.schema = schema
        self._items = tuple(
            (name, str(constraints[name]))
            for name in schema.all_field_names
            if name in constraints
        )
        self._key: Optional[str] = None
        self._hash: Optional[int] = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def msd_of(cls, record: Record) -> "FieldQuery":
        """The most specific query of a record: every field constrained."""
        return cls(record.schema, record.values)

    @classmethod
    def of_record(
        cls, record: Record, fields: Iterable[str]
    ) -> "FieldQuery":
        """The query constraining ``fields`` to the record's values."""
        constraints = {name: record[name] for name in fields}
        return cls(record.schema, constraints)

    # Parsing canonical text is on the simulation's hot path (a node's
    # response entries are parsed by the user at every step) and the same
    # texts recur constantly, so results are memoized per schema.  The
    # cache dict hangs off the schema instance itself -- not off
    # ``id(schema)``, whose value can be recycled after a schema is
    # garbage-collected and would then serve queries bound to a dead
    # schema -- and evicts least-recently-used entries instead of
    # discarding everything at the limit.
    _PARSE_CACHE_ATTR = "_fieldquery_parse_cache"
    _PARSE_CACHE_LIMIT = 200_000

    @classmethod
    def parse(cls, schema: Schema, text: str) -> "FieldQuery":
        """Recover a field query from its canonical XPath text."""
        counters.field_parse_calls += 1
        cache: Optional[OrderedDict[str, "FieldQuery"]]
        cache = schema.__dict__.get(cls._PARSE_CACHE_ATTR)
        if cache is None:
            cache = OrderedDict()
            # Schema is a frozen dataclass; attach the cache via
            # object.__setattr__ so it lives and dies with the instance.
            object.__setattr__(schema, cls._PARSE_CACHE_ATTR, cache)
        cached = cache.get(text)
        if cached is not None:
            counters.field_parse_cache_hits += 1
            cache.move_to_end(text)
            return cached
        counters.field_parse_cache_misses += 1
        parsed = cls._parse_uncached(schema, text)
        cache[text] = parsed
        while len(cache) > cls._PARSE_CACHE_LIMIT:
            cache.popitem(last=False)
        return parsed

    @classmethod
    def _parse_uncached(cls, schema: Schema, text: str) -> "FieldQuery":
        try:
            path = parse_xpath(text)
        except ValueError as error:
            raise QueryParseError(f"unparseable query text: {error}") from error
        if not path.absolute or path.length != 1:
            raise QueryParseError(
                f"canonical query text must be a rooted single step: {text!r}"
            )
        root_step = path.steps[0]
        if root_step.name != schema.root:
            raise QueryParseError(
                f"query root {root_step.name!r} does not match schema "
                f"{schema.root!r}"
            )
        reverse = {
            tuple(schema.path_of(name).split("/")): name
            for name in schema.all_field_names
        }
        constraints: dict[str, str] = {}
        for predicate in root_step.predicates:
            if predicate.comparison is not None:
                raise QueryParseError(
                    f"comparison predicates are not field constraints: {text!r}"
                )
            tags, value = _linearize(predicate.path)
            field_name = reverse.get(tuple(tags))
            if field_name is None:
                raise QueryParseError(
                    f"no schema field at path {'/'.join(tags)!r} in {text!r}"
                )
            if field_name in constraints:
                raise QueryParseError(f"duplicate constraint on {field_name!r}")
            constraints[field_name] = value
        if not constraints:
            raise QueryParseError(f"query has no field constraints: {text!r}")
        return cls(schema, constraints)

    # -- accessors ----------------------------------------------------------------

    @property
    def items(self) -> tuple[tuple[str, str], ...]:
        """Constraints as (field, value) pairs in schema order."""
        return self._items

    @property
    def fields(self) -> frozenset[str]:
        return frozenset(name for name, _ in self._items)

    def value(self, field_name: str) -> Optional[str]:
        """The constrained value of a field, or None when unconstrained."""
        for name, val in self._items:
            if name == field_name:
                return val
        return None

    def key(self) -> str:
        """Canonical XPath text -- the identifier hashed into the DHT."""
        if self._key is None:
            self._key = self.schema.xpath_for(dict(self._items))
        return self._key

    def is_msd(self) -> bool:
        """True when every schema field (queryable and admin) is constrained."""
        return len(self._items) == len(self.schema.all_field_names)

    # -- algebra --------------------------------------------------------------------

    def covers(self, other: "FieldQuery") -> bool:
        """Covering test: every constraint of self also binds in other."""
        if self.schema is not other.schema:
            return False
        mine = set(self._items)
        theirs = set(other._items)
        return mine <= theirs

    def covers_record(self, record: Record) -> bool:
        """True when the record satisfies every constraint."""
        return all(record.get(name) == value for name, value in self._items)

    def restrict(self, fields: Iterable[str]) -> "FieldQuery":
        """The sub-query keeping only the given fields (must be present)."""
        wanted = set(fields)
        missing = wanted - {name for name, _ in self._items}
        if missing:
            raise SchemaError(f"query does not constrain fields: {sorted(missing)}")
        constraints = {name: val for name, val in self._items if name in wanted}
        return FieldQuery(self.schema, constraints)

    def extend(self, constraints: Mapping[str, str]) -> "FieldQuery":
        """A more specific query with additional constraints."""
        merged = dict(self._items)
        for name, value in constraints.items():
            if name in merged and merged[name] != value:
                raise SchemaError(f"conflicting constraint on {name!r}")
            merged[name] = value
        return FieldQuery(self.schema, merged)

    def to_pattern(self) -> TreePattern:
        """Tree-pattern form, for interoperation with :mod:`repro.xmlq`."""
        return pattern_from_xpath(self.key())

    # -- dunder --------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FieldQuery):
            return NotImplemented
        return self.schema is other.schema and self._items == other._items

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((id(self.schema), self._items))
        return self._hash

    def __repr__(self) -> str:
        pairs = ", ".join(f"{name}={value!r}" for name, value in self._items)
        return f"FieldQuery({pairs})"


def _linearize(path: LocationPath) -> tuple[list[str], str]:
    """Flatten a canonical predicate tree into (element tags, value).

    Canonical predicates are chains ``a[b[...[value]]]`` after
    normalization: each step has exactly one nested predicate until the
    value leaf.
    """
    tags: list[str] = []
    steps = path.steps
    while True:
        if len(steps) != 1:
            raise QueryParseError("predicate is not a canonical chain")
        step: LocationStep = steps[0]
        if not step.predicates:
            # The leaf: this step's name is the constrained value.
            return tags, step.name
        if len(step.predicates) != 1 or step.predicates[0].comparison is not None:
            raise QueryParseError("predicate is not a canonical chain")
        tags.append(step.name)
        steps = step.predicates[0].path.steps
