"""Field queries: the working form of queries inside the index layer.

A :class:`FieldQuery` is a conjunction of per-field *predicates* over a
:class:`repro.core.fields.Schema` -- :class:`repro.core.predicates.Exact`
equality (the seed semantics), plus :class:`Prefix`, :class:`Wildcard`
and :class:`Range` constraints (Section IV-C and the trie-over-DHT
extension).  It is the structured twin of a canonical XPath expression:
``key()`` produces the normalized XPath text whose hash places the query
in the DHT, and :meth:`parse` recovers the structure from that text for
every predicate form.

Covering (Section III-B) factors per field: ``q'`` covers ``q`` if and
only if every field ``q'`` constrains is also constrained by ``q`` with
an *implied* predicate (equal value, extending prefix, contained range,
...).  On the exact fragment this reduces to the seed's
subset-of-constraints rule; the agreement of the full relation with the
tree-pattern homomorphism of :mod:`repro.xmlq.pattern` is verified by
property-based tests on the fragments where the homomorphism applies.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Mapping, Optional

from repro.core.fields import Record, Schema, SchemaError
from repro.core.predicates import (
    PREFIX_TAG,
    RANGE_TAG,
    Exact,
    FieldPredicate,
    PredicateError,
    Prefix,
    Range,
    Wildcard,
    coerce,
)
from repro.perf import counters
from repro.xmlq.astnodes import LocationStep, Predicate
from repro.xmlq.pattern import TreePattern, pattern_from_xpath
from repro.xmlq.xpparser import parse_xpath


class QueryParseError(ValueError):
    """Raised when query text cannot be interpreted against a schema."""


class FieldQuery:
    """An immutable conjunction of field predicates over a schema."""

    __slots__ = ("schema", "_items", "_key", "_hash")

    def __init__(
        self, schema: Schema, constraints: Mapping[str, object]
    ) -> None:
        if not constraints:
            raise SchemaError("a query needs at least one field constraint")
        for field_name in constraints:
            schema.path_of(field_name)  # validates field names
        self.schema = schema
        self._items: tuple[tuple[str, FieldPredicate], ...] = tuple(
            (name, coerce(constraints[name]))
            for name in schema.all_field_names
            if name in constraints
        )
        self._key: Optional[str] = None
        self._hash: Optional[int] = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def msd_of(cls, record: Record) -> "FieldQuery":
        """The most specific query of a record: every field constrained."""
        return cls(record.schema, record.values)

    @classmethod
    def of_record(
        cls, record: Record, fields: Iterable[str]
    ) -> "FieldQuery":
        """The query constraining ``fields`` to the record's values."""
        constraints = {name: record[name] for name in fields}
        return cls(record.schema, constraints)

    # Parsing canonical text is on the simulation's hot path (a node's
    # response entries are parsed by the user at every step) and the same
    # texts recur constantly, so results are memoized per schema.  The
    # cache dict hangs off the schema instance itself -- not off
    # ``id(schema)``, whose value can be recycled after a schema is
    # garbage-collected and would then serve queries bound to a dead
    # schema -- and evicts least-recently-used entries instead of
    # discarding everything at the limit.
    _PARSE_CACHE_ATTR = "_fieldquery_parse_cache"
    _PARSE_CACHE_LIMIT = 200_000

    @classmethod
    def parse(cls, schema: Schema, text: str) -> "FieldQuery":
        """Recover a field query from its canonical XPath text."""
        counters.field_parse_calls += 1
        cache: Optional[OrderedDict[str, "FieldQuery"]]
        cache = schema.__dict__.get(cls._PARSE_CACHE_ATTR)
        if cache is None:
            cache = OrderedDict()
            # Schema is a frozen dataclass; attach the cache via
            # object.__setattr__ so it lives and dies with the instance.
            object.__setattr__(schema, cls._PARSE_CACHE_ATTR, cache)
        cached = cache.get(text)
        if cached is not None:
            counters.field_parse_cache_hits += 1
            cache.move_to_end(text)
            return cached
        counters.field_parse_cache_misses += 1
        parsed = cls._parse_uncached(schema, text)
        cache[text] = parsed
        while len(cache) > cls._PARSE_CACHE_LIMIT:
            cache.popitem(last=False)
        return parsed

    @classmethod
    def _parse_uncached(cls, schema: Schema, text: str) -> "FieldQuery":
        try:
            path = parse_xpath(text)
        except ValueError as error:
            raise QueryParseError(f"unparseable query text: {error}") from error
        if not path.absolute or path.length != 1:
            raise QueryParseError(
                f"canonical query text must be a rooted single step: {text!r}"
            )
        root_step = path.steps[0]
        if root_step.name != schema.root:
            raise QueryParseError(
                f"query root {root_step.name!r} does not match schema "
                f"{schema.root!r}"
            )
        reverse = {
            tuple(schema.path_of(name).split("/")): name
            for name in schema.all_field_names
        }
        constraints: dict[str, FieldPredicate] = {}
        # Range constraints arrive as two comparison predicates on the
        # same field; both bounds must be present for the pair to fold.
        range_bounds: dict[str, dict[str, int]] = {}
        for predicate in root_step.predicates:
            tags, value, op = _linearize(predicate)
            field_name = reverse.get(tuple(tags))
            if field_name is None:
                raise QueryParseError(
                    f"no schema field at path {'/'.join(tags)!r} in {text!r}"
                )
            if op in (">=", "<="):
                if field_name in constraints:
                    raise QueryParseError(
                        f"duplicate constraint on {field_name!r}"
                    )
                bounds = range_bounds.setdefault(field_name, {})
                if op in bounds:
                    raise QueryParseError(
                        f"duplicate {op} bound on {field_name!r} in {text!r}"
                    )
                try:
                    bounds[op] = int(value)
                except ValueError:
                    raise QueryParseError(
                        f"non-numeric range bound {value!r} in {text!r}"
                    ) from None
                continue
            if field_name in constraints or field_name in range_bounds:
                raise QueryParseError(f"duplicate constraint on {field_name!r}")
            constraints[field_name] = cls._leaf_predicate(op, value, text)
        for field_name, bounds in range_bounds.items():
            if set(bounds) != {">=", "<="}:
                raise QueryParseError(
                    f"range on {field_name!r} needs both >= and <= bounds: "
                    f"{text!r}"
                )
            try:
                constraints[field_name] = Range(bounds[">="], bounds["<="])
            except PredicateError as error:
                raise QueryParseError(str(error)) from error
        if not constraints:
            raise QueryParseError(f"query has no field constraints: {text!r}")
        return cls(schema, constraints)

    @classmethod
    def _leaf_predicate(
        cls, op: Optional[str], value: str, text: str
    ) -> FieldPredicate:
        """Predicate for one parsed leaf (everything but range pairs)."""
        try:
            if op is None:
                if value.startswith(PREFIX_TAG):
                    prefix = value[len(PREFIX_TAG):]
                    if not prefix:
                        raise QueryParseError(f"empty prefix constraint: {text!r}")
                    return Prefix(prefix)
                if value.startswith(RANGE_TAG):
                    raise QueryParseError(
                        f"range constraints are spelled as comparison "
                        f"predicates, not {value!r}: {text!r}"
                    )
                return Exact(value)
            if op == "=":
                if "*" not in value:
                    raise QueryParseError(
                        f"comparison predicates are not field constraints: "
                        f"{text!r}"
                    )
                return Wildcard(value)
        except PredicateError as error:
            raise QueryParseError(str(error)) from error
        raise QueryParseError(
            f"unsupported comparison operator {op!r} in {text!r}"
        )

    # -- accessors ----------------------------------------------------------------

    @property
    def items(self) -> tuple[tuple[str, str], ...]:
        """Constraints as (field, text) pairs in schema order.

        Exact constraints read as their plain value (the seed form);
        other predicates use their construction spelling
        (``prefix:Al``, ``Al*n``, ``range:1995:2000``).
        """
        return tuple((name, pred.text) for name, pred in self._items)

    @property
    def predicate_items(self) -> tuple[tuple[str, FieldPredicate], ...]:
        """Constraints as (field, predicate) pairs in schema order."""
        return self._items

    @property
    def fields(self) -> frozenset[str]:
        return frozenset(name for name, _ in self._items)

    def value(self, field_name: str) -> Optional[str]:
        """The constraint text of a field, or None when unconstrained."""
        for name, pred in self._items:
            if name == field_name:
                return pred.text
        return None

    def predicate(self, field_name: str) -> Optional[FieldPredicate]:
        """The predicate constraining a field, or None."""
        for name, pred in self._items:
            if name == field_name:
                return pred
        return None

    def key(self) -> str:
        """Canonical XPath text -- the identifier hashed into the DHT."""
        if self._key is None:
            self._key = self.schema.xpath_for(dict(self._items))
        return self._key

    def is_msd(self) -> bool:
        """True when every schema field (queryable and admin) is constrained."""
        return len(self._items) == len(self.schema.all_field_names)

    def is_exact(self) -> bool:
        """True when every constraint is an equality (the seed fragment)."""
        return all(pred.kind == "exact" for _, pred in self._items)

    def specificity(self) -> tuple[int, int]:
        """Ordering key for entry selection: field count, predicate rank."""
        return (
            len(self._items),
            sum(pred.rank() for _, pred in self._items),
        )

    # -- algebra --------------------------------------------------------------------

    def covers(self, other: "FieldQuery") -> bool:
        """Covering test: every predicate of self is implied in other."""
        if self.schema is not other.schema:
            return False
        theirs = dict(other._items)
        for name, pred in self._items:
            other_pred = theirs.get(name)
            if other_pred is None or not pred.covers(other_pred):
                return False
        return True

    def covers_record(self, record: Record) -> bool:
        """True when the record satisfies every predicate."""
        for name, pred in self._items:
            value = record.get(name)
            if value is None or not pred.matches(value):
                return False
        return True

    def specialize(self, record: Record) -> "FieldQuery":
        """The exact query binding this query's fields to the record.

        The specialization step of Section IV-B: when a predicate query
        resolves to nothing, a user who knows more about the target can
        re-ask with the values filled in.
        """
        if not self.covers_record(record):
            raise SchemaError(
                f"{self!r} does not cover {record!r}; its specialization "
                "would answer a different question"
            )
        return FieldQuery.of_record(record, [name for name, _ in self._items])

    def restrict(self, fields: Iterable[str]) -> "FieldQuery":
        """The sub-query keeping only the given fields (must be present)."""
        wanted = set(fields)
        missing = wanted - {name for name, _ in self._items}
        if missing:
            raise SchemaError(f"query does not constrain fields: {sorted(missing)}")
        constraints = {name: pred for name, pred in self._items if name in wanted}
        return FieldQuery(self.schema, constraints)

    def extend(self, constraints: Mapping[str, object]) -> "FieldQuery":
        """A more specific query with additional constraints."""
        merged: dict[str, FieldPredicate] = dict(self._items)
        for name, value in constraints.items():
            pred = coerce(value)
            if name in merged and merged[name] != pred:
                raise SchemaError(f"conflicting constraint on {name!r}")
            merged[name] = pred
        return FieldQuery(self.schema, merged)

    def to_pattern(self) -> TreePattern:
        """Tree-pattern form, for interoperation with :mod:`repro.xmlq`."""
        return pattern_from_xpath(self.key())

    # -- dunder --------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FieldQuery):
            return NotImplemented
        return self.schema is other.schema and self._items == other._items

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((id(self.schema), self._items))
        return self._hash

    def __repr__(self) -> str:
        pairs = ", ".join(f"{name}={pred.text!r}" for name, pred in self._items)
        return f"FieldQuery({pairs})"


def _linearize(
    predicate: Predicate,
) -> tuple[list[str], str, Optional[str]]:
    """Flatten a canonical predicate tree into (tags, value, operator).

    Canonical predicates are chains ``a[b[...[leaf]]]`` after
    normalization: each step has exactly one nested predicate until the
    leaf, which is either a bare value step (operator ``None``) or a
    comparison ``tag op literal`` (prefix/wildcard/range spellings).
    """
    tags: list[str] = []
    node = predicate
    while True:
        steps = node.path.steps
        if len(steps) != 1:
            raise QueryParseError("predicate is not a canonical chain")
        step: LocationStep = steps[0]
        if node.comparison is not None:
            if step.predicates:
                raise QueryParseError("predicate is not a canonical chain")
            tags.append(step.name)
            return tags, node.comparison.value, node.comparison.op
        if not step.predicates:
            # The leaf: this step's name is the constrained value.
            return tags, step.name, None
        if len(step.predicates) != 1:
            raise QueryParseError("predicate is not a canonical chain")
        tags.append(step.name)
        node = step.predicates[0]
