"""Trie-over-DHT index: prefix/range lookups as bounded trie walks.

The alternative index structure of the predicate-algebra refactor,
following the trie-over-DHT line of work (prefix search in structured
P2P overlays, partial-match queries over distributed tries): instead of
hashing only whole values, each trie-indexed field materializes a small
trie whose *nodes are DHT keys* and whose child links are ordinary index
entries, so child expansion is a plain lookup and a range query is a
bounded walk down the levels that cover it.

The trie of a field with declared levels ``(l1 < l2 < ...)`` is::

    field root  -- the universal wildcard key, e.g. /article[author[name="*"]]
      └── prefix level l1   /article[author[name[prefix:A]]]
            └── prefix level l2   /article[author[name[prefix:Al]]]
                  └── exact entry  /article[author[name[Alan_Doe]]]
                        └── (ordinary scheme chain down to the MSD)

Every link is stored through ``service.index_store`` exactly like the
scheme's own chains, so trie entries replicate, count toward storage,
and serve through the same node-side query path.  The lookup side lives
in :class:`~repro.core.engine.LookupEngine`: a predicate query is
rewritten onto its deepest covering trie node
(:meth:`IndexScheme.trie_entry_for`) and descends by ordinary
``index_step`` exchanges -- no special message types.

Which fields carry a trie, with which levels and for which predicate
kinds, is declared on the :class:`~repro.core.scheme.IndexScheme` via
:class:`~repro.core.scheme.FieldPredicates` -- the trie is
scheme-pluggable, not a side-car.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from repro.core.fields import Record, SchemaError
from repro.core.predicates import Prefix, Wildcard
from repro.core.query import FieldQuery
from repro.core.scheme import FieldPredicates
from repro.core.service import IndexService


class TrieIndex:
    """Materializes per-field tries over an :class:`IndexService`.

    ``declarations`` defaults to the service scheme's own predicate
    declarations; only fields with non-empty ``trie_levels`` get a trie.
    Raises :class:`SchemaError` when nothing is trie-indexed (building a
    trie over a scheme that declared none is a configuration mistake,
    not a silent no-op).
    """

    def __init__(
        self,
        service: IndexService,
        declarations: Optional[Mapping[str, FieldPredicates]] = None,
    ) -> None:
        if declarations is None:
            declarations = service.scheme.predicates
        self.service = service
        self.levels: dict[str, tuple[int, ...]] = {}
        for field, declared in declarations.items():
            service.schema.path_of(field)
            if declared.trie_levels:
                self.levels[field] = declared.trie_levels
        if not self.levels:
            raise SchemaError("trie index needs at least one field with levels")

    # -- construction -------------------------------------------------------------

    def chain_for(self, record: Record, field: str) -> list[FieldQuery]:
        """The trie path a record's field value is indexed under.

        Root wildcard, then each prefix level not longer than the value,
        then the exact single-field query, whose ordinary scheme chain
        continues down to the MSD.
        """
        if field not in self.levels:
            raise SchemaError(f"field {field!r} has no trie levels")
        value = record[field]
        schema = self.service.schema
        chain: list[FieldQuery] = [FieldQuery(schema, {field: Wildcard("*")})]
        for level in self.levels[field]:
            if level > len(value):
                break
            chain.append(FieldQuery(schema, {field: Prefix(value[:level])}))
        chain.append(FieldQuery.of_record(record, [field]))
        return chain

    def insert_record(self, record: Record) -> None:
        """Store the record's trie links as ordinary index entries."""
        for field in self.levels:
            chain = self.chain_for(record, field)
            for parent, child in zip(chain, chain[1:]):
                self.service.index_store.put(parent.key(), child.key())

    def insert_all(self, records: Iterable[Record]) -> None:
        """Materialize the trie links of a batch of records."""
        for record in records:
            self.insert_record(record)
