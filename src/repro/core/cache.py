"""Adaptive distributed cache: per-node shortcut stores (Section IV-C).

After a successful lookup, shortcut entries -- direct mappings from a
query to the descriptor (MSD) of the target file -- are created in the
caches of traversed index nodes.  A later user asking the same query can
jump straight to the file.  Three policies are evaluated (Section V-D):

- **multi-cache** -- shortcuts are created on *every* node along the
  lookup path; unbounded capacity;
- **single-cache** -- shortcuts are created only on the *first* node
  contacted; unbounded capacity;
- **LRU-k** -- like single-cache but each node stores at most ``k``
  cached keys, evicting the least-recently-used key when full.

A cached *key* is a query; its entry accumulates the MSDs it has been a
shortcut for (one broad query can lead different users to different
files).  Eviction operates on keys, matching the paper's "allowed maximum
of 10, 20, and 30 cached keys per node".
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Optional


class CachePolicy(enum.Enum):
    """Shortcut-creation and replacement policies of Section V-D."""

    NONE = "none"
    MULTI = "multi"
    SINGLE = "single"
    LRU = "lru"

    @property
    def caches_enabled(self) -> bool:
        return self is not CachePolicy.NONE

    @property
    def all_path_nodes(self) -> bool:
        """Whether shortcuts are created on every traversed index node."""
        return self is CachePolicy.MULTI

    @staticmethod
    def parse(text: str) -> tuple["CachePolicy", Optional[int]]:
        """Parse "none", "multi", "single", or "lruK" (e.g. "lru30")."""
        lowered = text.strip().lower()
        if lowered.startswith("lru"):
            suffix = lowered[3:]
            if not suffix.isdigit() or int(suffix) < 1:
                raise ValueError(f"bad LRU capacity in {text!r}")
            return CachePolicy.LRU, int(suffix)
        try:
            return CachePolicy(lowered), None
        except ValueError:
            raise ValueError(f"unknown cache policy {text!r}") from None


#: How many shortcut targets one cached key retains.  A cached key maps a
#: generic query to the descriptor(s) of recently found target files; one
#: broad query (an author) can lead different users to different files, so
#: an entry keeps the few most recent targets, LRU-ordered.  Bounding the
#: entry keeps responses small (shortcuts ride along in every answer).
DEFAULT_ENTRY_CAPACITY = 4


class CacheEntry:
    """One cached key's shortcuts: recent target MSDs, LRU-bounded."""

    __slots__ = ("capacity", "_targets")

    def __init__(self, capacity: int = DEFAULT_ENTRY_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("entry capacity must be positive")
        self.capacity = capacity
        self._targets: OrderedDict[str, None] = OrderedDict()

    def add(self, msd_key: str) -> bool:
        """Record a shortcut target; returns True when state changed."""
        if msd_key in self._targets:
            self._targets.move_to_end(msd_key)
            return False
        if len(self._targets) >= self.capacity:
            self._targets.popitem(last=False)
        self._targets[msd_key] = None
        return True

    def __contains__(self, msd_key: str) -> bool:
        return msd_key in self._targets

    def __len__(self) -> int:
        return len(self._targets)

    def __iter__(self):
        return iter(self._targets)


class NodeCache:
    """One node's shortcut cache with optional LRU key eviction."""

    def __init__(
        self,
        capacity: Optional[int] = None,
        entry_capacity: int = DEFAULT_ENTRY_CAPACITY,
    ) -> None:
        """``capacity`` bounds the number of cached keys (None =
        unbounded); ``entry_capacity`` bounds targets per key."""
        if capacity is not None and capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.entry_capacity = entry_capacity
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, query_key: str) -> bool:
        return query_key in self._entries

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._entries) >= self.capacity

    def insert(self, query_key: str, msd_key: str) -> bool:
        """Add a shortcut ``query -> msd``; returns True if state changed.

        Inserting refreshes the key's recency.  When the cache is at
        capacity and the key is new, the least-recently-used key is
        evicted first.
        """
        entry = self._entries.get(query_key)
        if entry is not None:
            self._entries.move_to_end(query_key)
            return entry.add(msd_key)
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        entry = CacheEntry(self.entry_capacity)
        entry.add(msd_key)
        self._entries[query_key] = entry
        return True

    def lookup(self, query_key: str) -> Optional[CacheEntry]:
        """Return the entry for a query key, refreshing its recency."""
        entry = self._entries.get(query_key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(query_key)
        self.hits += 1
        return entry

    def peek(self, query_key: str) -> Optional[CacheEntry]:
        """Inspect an entry without touching recency or hit counters."""
        return self._entries.get(query_key)

    def shortcut_count(self) -> int:
        """Total number of (query, msd) shortcut pairs stored."""
        return sum(len(entry) for entry in self._entries.values())

    def clear(self) -> None:
        """Drop every cached key."""
        self._entries.clear()
