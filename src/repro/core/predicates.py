"""Typed field predicates: the query algebra over descriptor fields.

The paper's queries are conjunctions of per-field constraints.  The seed
implemented equality only; Section IV-C sketches how "more generic
queries can be obtained ... using substring matching", and the related
trie-over-DHT literature generalizes that to wildcard and range lookups.
This module is the algebra those layers share: each field constraint is
one of

- :class:`Exact`    -- ``field = value`` (the seed semantics);
- :class:`Prefix`   -- ``field`` starts with a string (Section IV-C);
- :class:`Wildcard` -- glob with ``*`` segments (``"Al*n"``);
- :class:`Range`    -- numeric closed interval (``year in [1995, 2000]``).

Every predicate knows three things:

``matches(value)``
    whether a concrete field value satisfies it;
``covers(other)``
    predicate implication: every value matching ``other`` also matches
    ``self``.  Together with subset-of-constraints this defines query
    covering.  The relation is *sound but conservative* for wildcard
    pairs (undecidable cases return False); the exact/prefix/range
    fragments are complete and pinned against the ``repro.xmlq``
    tree-pattern homomorphism oracle by tests;
``predicate_texts(path)``
    its canonical XPath predicate spelling(s), fixed points of
    :func:`repro.xmlq.normalize.normalize_xpath` so predicate keys hash
    and travel exactly like the seed's equality keys:

    =========  ==================================================
    Exact      ``[author[name[Alan]]]``
    Prefix     ``[author[name[prefix:Al]]]``
    Wildcard   ``[author[name="Al*n"]]``
    Range      ``[year>=1995][year<=2000]`` (two comparison preds)
    =========  ==================================================

``rank()`` orders predicates by specificity (exact above prefix above
wildcard above range) for the engine's entry selection, and
``trie_anchor`` exposes the literal prefix shared by all matching
values, which is what the trie-over-DHT index descends by.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from repro.core.fields import SchemaError

#: Marker distinguishing prefix constraints inside canonical key text.
PREFIX_TAG = "prefix:"
#: Construction-side spelling of a range (``range:LO:HI``).  Key text
#: always uses comparison predicates; a ``range:`` leaf in a key is
#: rejected so every query has exactly one canonical spelling.
RANGE_TAG = "range:"

#: The lexer's bare-word class: leaf values in canonical key text must
#: match it or the key would not round-trip through the query parser.
_BARE_WORD_RE = re.compile(r"[\w.\-:+]+\Z")

#: Exact specificity dominates any literal length a prefix or wildcard
#: could reach.
_EXACT_RANK = 1 << 20


class PredicateError(SchemaError):
    """Raised for malformed predicate constructions or spellings."""


@dataclass(frozen=True)
class Exact:
    """Equality: the field has exactly this value."""

    value: str

    kind = "exact"

    def __post_init__(self) -> None:
        value = str(self.value)
        object.__setattr__(self, "value", value)
        if not value:
            raise PredicateError("an exact constraint cannot be empty")
        if value.startswith(PREFIX_TAG) or value.startswith(RANGE_TAG):
            raise PredicateError(
                f"exact value {value!r} collides with a reserved predicate tag"
            )
        if "*" in value or '"' in value or "'" in value:
            raise PredicateError(
                f"exact value {value!r} contains wildcard/quote characters"
            )

    def matches(self, value: str) -> bool:
        """True when the value equals this constraint exactly."""
        return value == self.value

    def covers(self, other: "FieldPredicate") -> bool:
        """Equality implies only equality to the same value."""
        return other.kind == "exact" and other.value == self.value

    def rank(self) -> int:
        """Specificity rank: exact dominates every other kind."""
        return _EXACT_RANK

    @property
    def text(self) -> str:
        return self.value

    @property
    def trie_anchor(self) -> str:
        return self.value

    def predicate_texts(self, path_parts: tuple[str, ...]) -> list[str]:
        """Canonical spelling: the value nested in the field path."""
        return [f"[{_nest(path_parts, self.value)}]"]

    def __repr__(self) -> str:
        return f"Exact({self.value!r})"


@dataclass(frozen=True)
class Prefix:
    """The field value starts with ``prefix``."""

    prefix: str

    kind = "prefix"

    def __post_init__(self) -> None:
        prefix = str(self.prefix)
        object.__setattr__(self, "prefix", prefix)
        if not prefix:
            raise PredicateError("a prefix constraint cannot be empty")
        if not _BARE_WORD_RE.match(prefix):
            raise PredicateError(
                f"prefix {prefix!r} is not a bare word (its key would not parse)"
            )

    def matches(self, value: str) -> bool:
        """True when the value starts with the prefix."""
        return value.startswith(self.prefix)

    def covers(self, other: "FieldPredicate") -> bool:
        """Prefix implication: the other constraint forces this prefix."""
        if other.kind == "exact":
            return other.value.startswith(self.prefix)
        if other.kind == "prefix":
            return other.prefix.startswith(self.prefix)
        if other.kind == "wildcard":
            # Every wildcard match starts with the pattern's first
            # literal, so implication holds iff that literal already
            # carries this prefix.
            return other.pattern.split("*", 1)[0].startswith(self.prefix)
        return False

    def rank(self) -> int:
        """Specificity rank: longer prefixes are more specific."""
        return len(self.prefix)

    @property
    def text(self) -> str:
        return f"{PREFIX_TAG}{self.prefix}"

    @property
    def trie_anchor(self) -> str:
        return self.prefix

    def predicate_texts(self, path_parts: tuple[str, ...]) -> list[str]:
        """Canonical spelling: the tagged prefix nested in the path."""
        return [f"[{_nest(path_parts, self.text)}]"]

    def __repr__(self) -> str:
        return f"Prefix({self.prefix!r})"


@dataclass(frozen=True)
class Wildcard:
    """Glob over the field value: literal segments joined by ``*``.

    ``*`` matches any (possibly empty) substring; ``"*"`` alone is the
    universal constraint and doubles as the trie root of a field.
    """

    pattern: str

    kind = "wildcard"

    def __post_init__(self) -> None:
        pattern = str(self.pattern)
        object.__setattr__(self, "pattern", pattern)
        if "*" not in pattern:
            raise PredicateError(
                f"wildcard pattern {pattern!r} has no '*' (use an exact value)"
            )
        if '"' in pattern or "'" in pattern:
            raise PredicateError(
                f"wildcard pattern {pattern!r} contains quote characters"
            )

    def matches(self, value: str) -> bool:
        """Greedy glob match: ``*`` spans any (even empty) substring."""
        segments = self.pattern.split("*")
        if not value.startswith(segments[0]):
            return False
        if not value.endswith(segments[-1]):
            return False
        position = len(segments[0])
        end = len(value) - len(segments[-1])
        for segment in segments[1:-1]:
            if not segment:
                continue
            found = value.find(segment, position, end)
            if found < 0:
                return False
            position = found + len(segment)
        return position <= end

    def covers(self, other: "FieldPredicate") -> bool:
        """Sound (conservative) wildcard implication; see module doc."""
        if self.pattern == "*":
            return True
        if other.kind == "exact":
            return self.matches(other.value)
        if other.kind == "prefix":
            # Sound iff the pattern leaves the tail free: then any
            # extension of a matching prefix still matches.
            return self.pattern.endswith("*") and self.matches(other.prefix)
        if other.kind == "wildcard":
            if other.pattern == self.pattern:
                return True
            # "lit*" covers any pattern whose first literal extends lit.
            if self.pattern.count("*") == 1 and self.pattern.endswith("*"):
                literal = self.pattern[:-1]
                return other.pattern.split("*", 1)[0].startswith(literal)
            return False
        return False

    def rank(self) -> int:
        """Specificity rank: total literal length of the pattern."""
        return sum(len(segment) for segment in self.pattern.split("*"))

    @property
    def text(self) -> str:
        return self.pattern

    @property
    def trie_anchor(self) -> str:
        return self.pattern.split("*", 1)[0]

    def predicate_texts(self, path_parts: tuple[str, ...]) -> list[str]:
        """Canonical spelling: a quoted comparison on the leaf tag."""
        # '*' is never a bare word, so the comparison literal is always
        # double-quoted -- exactly the normalizer's serialization.
        leaf = f'{path_parts[-1]}="{self.pattern}"'
        return [f"[{_nest(path_parts[:-1], leaf)}]"]

    def __repr__(self) -> str:
        return f"Wildcard({self.pattern!r})"


@dataclass(frozen=True)
class Range:
    """Numeric closed interval: ``lo <= int(value) <= hi``."""

    lo: int
    hi: int

    kind = "range"

    def __post_init__(self) -> None:
        try:
            lo, hi = int(self.lo), int(self.hi)
        except (TypeError, ValueError) as error:
            raise PredicateError(
                f"range bounds must be integers: {self.lo!r}..{self.hi!r}"
            ) from error
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        if lo > hi:
            raise PredicateError(f"empty range: {lo} > {hi}")

    def matches(self, value: str) -> bool:
        """True when the value is numeric and inside the interval."""
        try:
            return self.lo <= int(value) <= self.hi
        except (TypeError, ValueError):
            return False

    def covers(self, other: "FieldPredicate") -> bool:
        """Interval containment (and membership for exact values)."""
        if other.kind == "exact":
            return self.matches(other.value)
        if other.kind == "range":
            return self.lo <= other.lo and other.hi <= self.hi
        return False

    def rank(self) -> int:
        """Specificity rank: ranges are the least specific kind."""
        return 0

    @property
    def text(self) -> str:
        return f"{RANGE_TAG}{self.lo}:{self.hi}"

    @property
    def trie_anchor(self) -> str:
        lo, hi = str(self.lo), str(self.hi)
        if len(lo) != len(hi):
            return ""
        anchor = 0
        while anchor < len(lo) and lo[anchor] == hi[anchor]:
            anchor += 1
        return lo[:anchor]

    def predicate_texts(self, path_parts: tuple[str, ...]) -> list[str]:
        """Canonical spelling: the ``>=``/``<=`` comparison pair."""
        return [
            f"[{_nest(path_parts[:-1], f'{path_parts[-1]}>={self.lo}')}]",
            f"[{_nest(path_parts[:-1], f'{path_parts[-1]}<={self.hi}')}]",
        ]

    def __repr__(self) -> str:
        return f"Range({self.lo}, {self.hi})"


FieldPredicate = Union[Exact, Prefix, Wildcard, Range]

#: Predicate kinds a scheme may declare per field (exact is always legal).
PREDICATE_KINDS = ("prefix", "wildcard", "range")


def coerce(constraint: object) -> FieldPredicate:
    """Normalize a constraint spelling into a predicate object.

    Strings use the construction DSL: ``prefix:Al`` -> :class:`Prefix`,
    ``range:1995:2000`` -> :class:`Range`, any ``*``-bearing string ->
    :class:`Wildcard`, anything else -> :class:`Exact`.  Predicate
    objects pass through.  Malformed spellings raise
    :class:`PredicateError`.
    """
    if isinstance(constraint, (Exact, Prefix, Wildcard, Range)):
        return constraint
    text = str(constraint)
    if text.startswith(PREFIX_TAG):
        return Prefix(text[len(PREFIX_TAG):])
    if text.startswith(RANGE_TAG):
        body = text[len(RANGE_TAG):]
        parts = body.split(":")
        if len(parts) != 2 or not parts[0] or not parts[1]:
            raise PredicateError(
                f"malformed range spelling {text!r} (want range:LO:HI)"
            )
        return Range(parts[0], parts[1])
    if "*" in text:
        return Wildcard(text)
    return Exact(text)


def _nest(path_parts: tuple[str, ...], leaf: str) -> str:
    """Wrap a leaf in nested element predicates: ``a[b[leaf]]``."""
    nested = leaf
    for tag in reversed(path_parts):
        nested = f"{tag}[{nested}]"
    return nested
