"""Indexing schemes: hierarchies of index classes (Figure 8).

An *index class* groups the index entries keyed by one combination of
fields -- e.g. the ``Author`` index of Figure 4 is the class keyed by
``{author}``.  An :class:`IndexScheme` is a DAG over index classes: an
edge from class ``K`` to class ``K'`` (with ``K ⊂ K'``) means that looking
up a ``K``-query returns the matching ``K'``-queries.  Terminal edges
point at :data:`MSD_TARGET`, the most specific descriptor, which the
underlying storage resolves to the file itself.

The three schemes evaluated in the paper:

- **simple** -- author and title queries resolve to author+title pairs;
  conference and year queries resolve to conference+year pairs; the pairs
  resolve to MSDs (Figure 8, left).
- **flat** -- every query class points directly at the MSD, so the index
  chain length is always 2 (Figure 8, center).
- **complex** -- some simple-scheme queries are split further: an author
  query resolves to author+conference pairs, which resolve to
  author+conference+year triples before reaching the MSD (Figure 8,
  right).  Deeper hierarchies trade lookup steps for shorter result sets.

Schemes also support explicit *shortcut* edges (Section IV-C: a popular
file "can be linked to deep in the hierarchy to short-circuit some
indexes"), used by the shortcut ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.core.fields import Record, Schema
from repro.core.predicates import PREDICATE_KINDS, Prefix, Wildcard
from repro.core.query import FieldQuery

#: Sentinel target: the most specific descriptor of a record.
MSD_TARGET = "MSD"

KeySet = frozenset[str]


class SchemeValidationError(ValueError):
    """Raised when a scheme's edges violate the covering discipline."""


@dataclass(frozen=True)
class FieldPredicates:
    """Predicate support a scheme declares for one field.

    ``kinds`` lists the non-exact predicate kinds the scheme resolves on
    this field (``"prefix"``, ``"wildcard"``, ``"range"``); exact
    equality is always supported.  ``trie_levels`` are the prefix depths
    at which the trie-over-DHT index materializes interior nodes for the
    field -- empty means no trie, in which case predicate queries fall
    back to the engine's specialization path.
    """

    kinds: tuple[str, ...] = ()
    trie_levels: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        kinds = tuple(self.kinds)
        levels = tuple(int(level) for level in self.trie_levels)
        object.__setattr__(self, "kinds", kinds)
        object.__setattr__(self, "trie_levels", levels)
        unknown = set(kinds) - set(PREDICATE_KINDS)
        if unknown:
            raise SchemeValidationError(
                f"unknown predicate kinds: {sorted(unknown)}"
            )
        if any(level < 1 for level in levels):
            raise SchemeValidationError("trie levels must be >= 1")
        if list(levels) != sorted(set(levels)):
            raise SchemeValidationError(
                "trie levels must be strictly increasing"
            )
        if levels and not kinds:
            raise SchemeValidationError(
                "trie levels declared without any predicate kinds"
            )


def article_predicates() -> dict[str, FieldPredicates]:
    """The default predicate declarations for the article schema.

    Author and title support prefix and wildcard constraints with
    one- and two-letter trie levels (Section IV-C's "files of an author
    that start with the letter 'A'"); year supports numeric ranges with
    century/decade trie levels.
    """
    return {
        "author": FieldPredicates(kinds=("prefix", "wildcard"), trie_levels=(1, 2)),
        "title": FieldPredicates(kinds=("prefix", "wildcard"), trie_levels=(1, 2)),
        "year": FieldPredicates(kinds=("range",), trie_levels=(2, 3)),
    }


class IndexScheme:
    """A DAG of index classes over a schema's fields."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        edges: Mapping[Iterable[str], Iterable[object]],
        predicates: Optional[Mapping[str, FieldPredicates]] = None,
    ) -> None:
        """Build a scheme from an edge map.

        ``edges`` maps each index-class keyset to the keysets it resolves
        to; the string :data:`MSD_TARGET` denotes the terminal MSD target.
        Every target keyset must be a strict superset of its source (this
        is the paper's covering discipline: an index key must cover every
        entry stored under it) and every target class must itself be
        resolvable (appear as a source or be the MSD).

        ``predicates`` optionally declares, per field, which non-exact
        predicate kinds the scheme resolves (and at which trie levels
        the trie-over-DHT index materializes interior nodes) -- see
        :class:`FieldPredicates`.  A field with trie levels must have a
        singleton index class, the hand-over point where trie walks
        rejoin the ordinary covering chains.
        """
        self.name = name
        self.schema = schema
        normalized: dict[KeySet, list[object]] = {}
        for source, targets in edges.items():
            source_set = self._as_keyset(source)
            target_list: list[object] = []
            for target in targets:
                if target == MSD_TARGET:
                    target_list.append(MSD_TARGET)
                else:
                    target_list.append(self._as_keyset(target))
            normalized[source_set] = target_list
        self._edges = normalized
        self.predicates: dict[str, FieldPredicates] = dict(predicates or {})
        self._validate()
        self._validate_predicates()

    def _as_keyset(self, fields: Iterable[str]) -> KeySet:
        keyset = frozenset(fields)
        if not keyset:
            raise SchemeValidationError("an index class needs at least one field")
        unknown = keyset - set(self.schema.field_names)
        if unknown:
            raise SchemeValidationError(
                f"index class uses non-queryable fields: {sorted(unknown)}"
            )
        return keyset

    def _validate(self) -> None:
        for source, targets in self._edges.items():
            if not targets:
                raise SchemeValidationError(
                    f"index class {set(source)} resolves to nothing"
                )
            for target in targets:
                if target == MSD_TARGET:
                    continue
                assert isinstance(target, frozenset)
                if not source < target:
                    raise SchemeValidationError(
                        f"edge {set(source)} -> {set(target)} breaks covering: "
                        "the target must be a strict superset"
                    )
                if target not in self._edges:
                    raise SchemeValidationError(
                        f"target class {set(target)} is not resolvable"
                    )
        # Superset discipline already rules out cycles; nothing more to check.

    def _validate_predicates(self) -> None:
        for field_name, declared in self.predicates.items():
            if field_name not in self.schema.field_names:
                raise SchemeValidationError(
                    f"predicate declaration on non-queryable field "
                    f"{field_name!r}"
                )
            if not isinstance(declared, FieldPredicates):
                raise SchemeValidationError(
                    f"predicate declaration for {field_name!r} must be a "
                    "FieldPredicates"
                )
            if declared.trie_levels and frozenset({field_name}) not in self._edges:
                raise SchemeValidationError(
                    f"trie levels on {field_name!r} need a singleton index "
                    "class to hand over to"
                )

    # -- predicate queries -------------------------------------------------------

    def accepts(self, query: FieldQuery) -> bool:
        """True when every non-exact predicate of the query is declared.

        An accepting scheme resolves the query either through its trie
        (when trie levels are declared) or through the engine's
        specialization fallback; a non-accepting scheme treats the query
        like any other non-indexed shape.
        """
        for name, predicate in query.predicate_items:
            if predicate.kind == "exact":
                continue
            declared = self.predicates.get(name)
            if declared is None or predicate.kind not in declared.kinds:
                return False
        return True

    def trie_entry_for(self, query: FieldQuery) -> Optional[FieldQuery]:
        """The trie node a predicate query's walk starts from, or None.

        Knowing the trie discipline (which levels exist) is scheme
        knowledge, exactly like knowing ``h(q)``: the user rewrites the
        predicate into the deepest materialized trie node whose prefix
        is shared by *every* matching value -- the predicate's anchor --
        and descends from there by ordinary lookups.  Returns None when
        the query is exact-only or some non-exact field has no declared
        trie, in which case the engine keeps the seed behaviour.
        """
        for name, predicate in query.predicate_items:
            if predicate.kind == "exact":
                continue
            declared = self.predicates.get(name)
            if (
                declared is None
                or predicate.kind not in declared.kinds
                or not declared.trie_levels
            ):
                return None
            anchor = predicate.trie_anchor
            depth = max(
                (level for level in declared.trie_levels if level <= len(anchor)),
                default=0,
            )
            if depth:
                return FieldQuery(self.schema, {name: Prefix(anchor[:depth])})
            return FieldQuery(self.schema, {name: Wildcard("*")})
        return None

    # -- introspection ----------------------------------------------------------

    @property
    def index_classes(self) -> list[KeySet]:
        """All index-class keysets, most general first."""
        return sorted(self._edges, key=lambda keyset: (len(keyset), sorted(keyset)))

    def targets_of(self, keyset: Iterable[str]) -> list[object]:
        """Resolution targets of an index class (keysets or MSD_TARGET)."""
        return list(self._edges[frozenset(keyset)])

    def is_indexed(self, fields: Iterable[str]) -> bool:
        """True when queries over exactly these fields are an index class."""
        return frozenset(fields) in self._edges

    def entry_classes(self) -> list[KeySet]:
        """Classes that are not the target of any other class.

        These are the hierarchy's entry points: the query shapes a user
        can start from without prior information.
        """
        targeted: set[KeySet] = set()
        for targets in self._edges.values():
            for target in targets:
                if target != MSD_TARGET:
                    assert isinstance(target, frozenset)
                    targeted.add(target)
        return [keyset for keyset in self.index_classes if keyset not in targeted]

    def chain_length(self, fields: Iterable[str]) -> int:
        """Worst-case index-path length from this class to the file.

        Counts user-system interactions: one per index class traversed,
        plus one for the MSD-to-file resolution.
        """
        keyset = frozenset(fields)
        if keyset not in self._edges:
            raise KeyError(f"not an index class: {set(keyset)}")
        longest = 0
        for target in self._edges[keyset]:
            if target == MSD_TARGET:
                longest = max(longest, 1)
            else:
                assert isinstance(target, frozenset)
                longest = max(longest, self.chain_length(target))
        return 1 + longest

    # -- index entry generation ----------------------------------------------------

    def mappings_for(self, record: Record) -> list[tuple[FieldQuery, FieldQuery]]:
        """All (index query -> more specific query) mappings for a record.

        For each edge ``K -> K'`` the record contributes the mapping
        ``(q_K(record); q_K'(record))``; MSD targets map to the record's
        most specific query.  Identical mappings produced through
        different edges are deduplicated.
        """
        msd = FieldQuery.msd_of(record)
        mappings: list[tuple[FieldQuery, FieldQuery]] = []
        seen: set[tuple[FieldQuery, FieldQuery]] = set()
        for source, targets in self._edges.items():
            source_query = FieldQuery.of_record(record, source)
            for target in targets:
                if target == MSD_TARGET:
                    target_query = msd
                else:
                    assert isinstance(target, frozenset)
                    target_query = FieldQuery.of_record(record, target)
                pair = (source_query, target_query)
                if pair not in seen:
                    seen.add(pair)
                    mappings.append(pair)
        return mappings

    def shortcut_mapping(
        self, record: Record, fields: Iterable[str]
    ) -> tuple[FieldQuery, FieldQuery]:
        """A deep link (Section IV-C): index class -> the record's MSD.

        E.g. ``shortcut_mapping(record, {"author"})`` produces the
        ``(q6; d1)`` entry of the paper, letting a popular file be reached
        from a broad query in a single step.
        """
        keyset = frozenset(fields)
        if keyset not in self._edges:
            raise KeyError(f"not an index class: {set(keyset)}")
        return (FieldQuery.of_record(record, keyset), FieldQuery.msd_of(record))

    def __repr__(self) -> str:
        return f"IndexScheme({self.name!r}, {len(self._edges)} classes)"


def simple_scheme(
    schema: Optional[Schema] = None,
    predicates: Optional[Mapping[str, FieldPredicates]] = None,
) -> IndexScheme:
    """The paper's *simple* scheme (Figure 8, left)."""
    schema = schema or _default_schema()
    return IndexScheme(
        "simple",
        schema,
        {
            ("author",): [("author", "title")],
            ("title",): [("author", "title")],
            ("author", "title"): [MSD_TARGET],
            ("conf",): [("conf", "year")],
            ("year",): [("conf", "year")],
            ("conf", "year"): [MSD_TARGET],
        },
        predicates=predicates,
    )


def flat_scheme(
    schema: Optional[Schema] = None,
    predicates: Optional[Mapping[str, FieldPredicates]] = None,
) -> IndexScheme:
    """The paper's *flat* scheme (Figure 8, center): everything -> MSD."""
    schema = schema or _default_schema()
    return IndexScheme(
        "flat",
        schema,
        {
            ("author",): [MSD_TARGET],
            ("title",): [MSD_TARGET],
            ("author", "title"): [MSD_TARGET],
            ("conf",): [MSD_TARGET],
            ("year",): [MSD_TARGET],
            ("conf", "year"): [MSD_TARGET],
        },
        predicates=predicates,
    )


def complex_scheme(
    schema: Optional[Schema] = None,
    predicates: Optional[Mapping[str, FieldPredicates]] = None,
) -> IndexScheme:
    """The paper's *complex* scheme (Figure 8, right).

    Author queries are split through author+conference and
    author+conference+year levels "in order to avoid long result lists":
    deeper chains, shorter result sets.
    """
    schema = schema or _default_schema()
    return IndexScheme(
        "complex",
        schema,
        {
            ("author",): [("author", "conf")],
            ("title",): [("author", "title")],
            ("author", "title"): [MSD_TARGET],
            ("author", "conf"): [("author", "conf", "year")],
            ("author", "conf", "year"): [MSD_TARGET],
            ("conf",): [("conf", "year")],
            ("year",): [("conf", "year")],
            ("conf", "year"): [MSD_TARGET],
        },
        predicates=predicates,
    )


def _default_schema() -> Schema:
    from repro.core.fields import ARTICLE_SCHEMA

    return ARTICLE_SCHEMA
