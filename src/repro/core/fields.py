"""Descriptor schemas: fields, records, descriptors, and query text.

The paper's running example is a bibliographic database whose descriptors
have author, title, conference, year, and size fields (Figure 1).  A
:class:`Schema` names the *queryable* fields of a descriptor type, maps
each field to its element path inside the descriptor, and produces the
canonical XPath text for any combination of field constraints -- the text
whose hash ``h(q)`` places a query on a node.

A :class:`Record` is one concrete data item: a value for every schema
field (plus optional administrative fields such as ``size`` that are
stored in the descriptor but never indexed, because "users are unlikely to
know the size beforehand", Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Mapping, Optional

from repro.xmlq.element import Element
from repro.xmlq.normalize import normalize_xpath


class SchemaError(ValueError):
    """Raised for unknown fields or malformed records."""


@dataclass(frozen=True)
class Schema:
    """A descriptor type: root tag, queryable fields, admin fields.

    ``fields`` maps each queryable field name to the ``/``-separated
    element path holding its value inside the descriptor (e.g. the
    ``author`` field of an article lives at ``author/name``).  ``admin``
    fields are stored in descriptors and MSDs but are not valid in broad
    queries.
    """

    root: str
    fields: Mapping[str, str]
    admin: Mapping[str, str] = dataclass_field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.root:
            raise SchemaError("schema root tag cannot be empty")
        overlap = set(self.fields) & set(self.admin)
        if overlap:
            raise SchemaError(f"fields cannot be both queryable and admin: {overlap}")

    @property
    def field_names(self) -> tuple[str, ...]:
        """Queryable field names, in schema declaration order."""
        return tuple(self.fields)

    @property
    def all_field_names(self) -> tuple[str, ...]:
        return tuple(self.fields) + tuple(self.admin)

    def path_of(self, field_name: str) -> str:
        """The element path of a field inside descriptors."""
        path = self.fields.get(field_name) or self.admin.get(field_name)
        if path is None:
            raise SchemaError(f"unknown field {field_name!r} in schema {self.root!r}")
        return path

    # -- query text -----------------------------------------------------------

    def xpath_for(self, constraints: Mapping[str, object]) -> str:
        """Canonical XPath for a set of field constraints.

        Values may be plain strings (equality, the seed semantics) or
        predicate objects from :mod:`repro.core.predicates`, which emit
        their own canonical spellings (prefix tags, ``"pat*"`` wildcard
        comparisons, range bound pairs).  The text equals the output of
        :func:`repro.xmlq.normalize.normalize_xpath` on any equivalent
        spelling (verified by tests), so every way of writing the query
        hashes to the same DHT key.  The canonical form is built
        directly -- nested predicates sorted by their serialized text --
        because this function sits on the hot path of the simulation.
        """
        if not constraints:
            raise SchemaError("a query needs at least one field constraint")
        unknown = set(constraints) - set(self.all_field_names)
        if unknown:
            raise SchemaError(f"unknown fields in constraints: {sorted(unknown)}")
        predicates = []
        for field_name in self.all_field_names:
            if field_name in constraints:
                constraint = constraints[field_name]
                parts = self.path_of(field_name).split("/")
                if hasattr(constraint, "predicate_texts"):
                    predicates.extend(constraint.predicate_texts(tuple(parts)))
                    continue
                parts.append(str(constraint))
                nested = parts[-1]
                for tag in reversed(parts[:-1]):
                    nested = f"{tag}[{nested}]"
                predicates.append(f"[{nested}]")
        predicates.sort()
        return f"/{self.root}" + "".join(predicates)

    def xpath_for_normalized(self, constraints: Mapping[str, str]) -> str:
        """Reference implementation of :meth:`xpath_for` via the general
        normalizer; kept for equivalence testing."""
        predicates = []
        for field_name in self.all_field_names:
            if field_name in constraints:
                path = self.path_of(field_name)
                value = constraints[field_name]
                predicates.append(f"[{path}/{value}]")
        return normalize_xpath(f"/{self.root}" + "".join(predicates))

    # -- descriptors ------------------------------------------------------------

    def descriptor_for(self, record: "Record") -> Element:
        """Build the XML descriptor of a record (Figure 1 style)."""
        root = _TreeBuilder(self.root)
        for field_name in self.all_field_names:
            value = record.get(field_name)
            if value is not None:
                root.set_path(self.path_of(field_name), value)
        return root.build()

    def record_from_descriptor(self, descriptor: Element) -> "Record":
        """Extract a record from a descriptor produced by this schema."""
        if descriptor.tag != self.root:
            raise SchemaError(
                f"descriptor root <{descriptor.tag}> does not match schema "
                f"<{self.root}>"
            )
        values: dict[str, str] = {}
        for field_name in self.all_field_names:
            text = descriptor.findtext(self.path_of(field_name))
            if text is not None:
                values[field_name] = text
        return Record(self, values)


class _TreeBuilder:
    """Assembles an element tree from path/value assignments."""

    def __init__(self, root_tag: str) -> None:
        self.root_tag = root_tag
        self._tree: dict = {}

    def set_path(self, path: str, value: str) -> None:
        parts = path.split("/")
        node = self._tree
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise SchemaError(f"path conflict at {part!r} in {path!r}")
        if parts[-1] in node:
            raise SchemaError(f"duplicate path {path!r}")
        node[parts[-1]] = value

    def build(self) -> Element:
        return self._build_element(self.root_tag, self._tree)

    def _build_element(self, tag: str, content) -> Element:
        if isinstance(content, str):
            return Element(tag, text=content)
        children = [
            self._build_element(child_tag, child_content)
            for child_tag, child_content in content.items()
        ]
        return Element(tag, children=children)


class Record:
    """One data item: values for (a subset of) a schema's fields."""

    __slots__ = ("schema", "_values", "_hash")

    def __init__(self, schema: Schema, values: Mapping[str, str]) -> None:
        for field_name in values:
            schema.path_of(field_name)  # validates
        missing = [f for f in schema.field_names if f not in values]
        if missing:
            raise SchemaError(f"record is missing queryable fields: {missing}")
        self.schema = schema
        self._values = {name: str(value) for name, value in values.items()}
        self._hash: Optional[int] = None

    def get(self, field_name: str) -> Optional[str]:
        """The record's value for a field, or None when absent."""
        return self._values.get(field_name)

    def __getitem__(self, field_name: str) -> str:
        try:
            return self._values[field_name]
        except KeyError:
            raise SchemaError(f"record has no value for field {field_name!r}")

    def items(self) -> list[tuple[str, str]]:
        """Present (field, value) pairs in schema declaration order."""
        return [
            (name, self._values[name])
            for name in self.schema.all_field_names
            if name in self._values
        ]

    @property
    def values(self) -> dict[str, str]:
        return dict(self._values)

    def descriptor(self) -> Element:
        """The record's XML descriptor (Figure 1 form)."""
        return self.schema.descriptor_for(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self.schema is other.schema and self._values == other._values

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((id(self.schema), tuple(sorted(self._values.items()))))
        return self._hash

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k}={v!r}" for k, v in self.items())
        return f"Record({pairs})"


#: The bibliographic schema used throughout the paper's evaluation.
#: ``author``, ``title``, ``conf`` and ``year`` are queryable; ``size`` is
#: administrative (never indexed -- Section IV-C).
ARTICLE_SCHEMA = Schema(
    root="article",
    fields={
        "author": "author/name",
        "title": "title",
        "conf": "conf",
        "year": "year",
    },
    admin={"size": "size"},
)
