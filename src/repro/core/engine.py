"""User-side lookup engine: iterative search down the query hierarchy.

Implements the lookup process of Section IV-B, the
generalization/specialization fallback for non-indexed queries, and the
shortcut-creation side of the adaptive cache (Section IV-C):

1. The user sends a query ``q`` to the node responsible for ``h(q)``.
2. The node returns the more specific queries mapped under ``q`` plus any
   cached shortcuts.  If a shortcut points at the file the user is after,
   the user jumps straight to it (a cache hit).
3. Otherwise the user selects the returned query that matches the data it
   is looking for and iterates, following an index path down the partial
   order until reaching the MSD, which the storage layer resolves to the
   file.
4. If ``q`` resolves to nothing although the file exists (a *recoverable
   error*, Table I), the engine generalizes ``q`` to an indexed query
   covering it and restarts from there, at the price of the wasted
   interaction(s).
5. After a successful lookup, shortcuts are created according to the
   cache policy: on every traversed index node (multi-cache) or on the
   first contacted node only (single-cache and LRU).
6. Deliveries can fail (the transport is allowed to drop messages and
   nodes may crash -- see :mod:`repro.net.faults`): each exchange is
   retried with deterministic backoff under a per-lookup interaction
   budget, and the trace records retries, failed sends, and whether the
   search gave up, so availability under churn is a measurement.

The engine models the *automated* search mode of the paper -- the target
record plays the role of the user's selection criterion at each step --
which is exactly the behaviour simulated in Section V.

Since the virtual-time refactor, one search is a **resumable state
machine**: :meth:`LookupEngine.search_steps` is a generator that yields
one :class:`SearchStep` per message exchange and receives the exchange's
result (or has the :class:`DeliveryError` thrown into it).  Two drivers
consume it:

- :meth:`LookupEngine.search` executes every step inline against the
  synchronous service API -- operation for operation the pre-refactor
  call stack, so sequential-mode results are bit-identical;
- :meth:`LookupEngine.start_async` executes steps through the service's
  continuation-passing API over an event kernel, so N users' searches
  interleave by virtual time and retry backoff becomes a scheduled
  timer instead of pure budget burn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, Optional, Union

from repro.core.fields import Record
from repro.core.query import FieldQuery, QueryParseError
from repro.core.service import IndexService, QueryAnswer
from repro.net.transport import DeliveryError
from repro.perf import counters

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer
    from repro.sim.kernel import EventKernel


class LookupError_(RuntimeError):
    """Raised when a search cannot make progress (data truly absent)."""


@dataclass
class SearchTrace:
    """Everything one search did, for the metric collectors.

    ``interactions`` counts completed message exchanges only; failed
    sends (message lost, node crashed with no replica left) are counted
    separately in ``failed_sends``, and ``retries`` counts the
    re-transmissions the engine issued to recover from them.
    ``gave_up`` marks a search abandoned because deliveries kept failing
    (retry/budget exhaustion) -- as opposed to the data being absent --
    so availability under faults is measured, not estimated.
    """

    query: FieldQuery
    found: bool
    interactions: int = 0
    errors: int = 0
    retries: int = 0
    failed_sends: int = 0
    gave_up: bool = False
    generalized: bool = False
    cache_hit: bool = False
    hit_interaction: Optional[int] = None  # 1-based index of the jump
    visited: list[tuple[int, str]] = field(default_factory=list)
    result_msd: Optional[str] = None
    #: Trace-span id of this lookup when the engine is traced (else None).
    span_id: Optional[int] = None

    @property
    def first_contact_hit(self) -> bool:
        return self.cache_hit and self.hit_interaction == 1


# -- search steps -----------------------------------------------------------
#
# The vocabulary of the search state machine: search_steps() yields one of
# these per externally visible action and is resumed with the action's
# result.  QueryStep/FetchStep expect a result (or a DeliveryError thrown
# in); ShortcutStep is fire-and-forget; BackoffStep asks the driver to let
# the retry backoff elapse (a no-op for the synchronous driver, whose
# backoff is pure budget burn; a timer for the event-kernel driver).


@dataclass(frozen=True)
class QueryStep:
    """Resolve a query at the node responsible for it."""

    query: FieldQuery


@dataclass(frozen=True)
class FetchStep:
    """Fetch the file stored under a most specific descriptor."""

    msd: FieldQuery


@dataclass(frozen=True)
class ShortcutStep:
    """Create one cache shortcut on a traversed node (best-effort)."""

    node: int
    query_key: str
    msd_key: str


@dataclass(frozen=True)
class BackoffStep:
    """Wait out a retry backoff of ``units`` budget units."""

    units: int


SearchStep = Union[QueryStep, FetchStep, ShortcutStep, BackoffStep]
#: The generator type of one resumable search.
SearchSteps = Generator[SearchStep, object, None]


class LookupEngine:
    """Drives searches for one user against an :class:`IndexService`."""

    #: Budget units charged before the k-th retry of one exchange: the
    #: deterministic stand-in for exponential backoff in a simulation
    #: with no wall clock (waiting longer = burning more of the lookup's
    #: interaction budget).
    DEFAULT_RETRY_BACKOFF = (1, 2, 4)

    #: Virtual milliseconds one backoff budget unit costs in async mode,
    #: so the deterministic budget backoff doubles as a real timer.
    DEFAULT_BACKOFF_UNIT_MS = 10.0

    def __init__(
        self,
        service: IndexService,
        user: str = "user:0",
        max_interactions: int = 64,
        max_retries: int = 3,
        retry_backoff: tuple[int, ...] = DEFAULT_RETRY_BACKOFF,
        backoff_unit_ms: float = DEFAULT_BACKOFF_UNIT_MS,
        tracer: Optional["Tracer"] = None,
        pipelined_shortcuts: bool = False,
    ) -> None:
        """``pipelined_shortcuts`` makes the *synchronous* driver
        dispatch the post-lookup cache-shortcut inserts through the
        service's continuation-passing API instead of one blocking
        round-trip per traversed node -- the wire client's pipelining
        optimization.  Off by default: the simulation's sequential
        driver must stay operation-for-operation identical to the
        pre-kernel call stack."""
        self.service = service
        self.user = user
        self.tracer = tracer
        self.pipelined_shortcuts = pipelined_shortcuts
        self.max_interactions = max_interactions
        self.max_retries = max_retries
        self.backoff_unit_ms = backoff_unit_ms
        self.retry_backoff = tuple(retry_backoff)
        if not self.retry_backoff:
            raise ValueError("retry_backoff cannot be empty")
        # Generalization candidates depend only on the scheme and schema,
        # so the priority order is computed once here instead of on every
        # _generalize call: larger keysets first (retain as much
        # information as possible), ties broken by schema field order,
        # which encodes the expected selectivity (author before title
        # before conf before year).
        field_order = {
            name: position
            for position, name in enumerate(service.schema.field_names)
        }
        self._generalization_order = sorted(
            service.scheme.index_classes,
            key=lambda keyset: (
                -len(keyset),
                sorted(field_order[name] for name in keyset),
            ),
        )
        # Idempotent under re-construction: building several engines for
        # one user name (or rebuilding after the endpoint unregistered)
        # must not trip the transport's duplicate-registration guard.
        if not service.transport.is_registered(user):
            service.transport.register(user, lambda message: None)

    # -- public API -------------------------------------------------------------

    def search(self, query: FieldQuery, target: Record) -> SearchTrace:
        """Locate the file of ``target`` starting from ``query``.

        ``query`` must cover the target record (the user knows what it is
        looking for).  Returns the full trace; raises nothing on a failed
        search (the trace reports ``found=False``).

        This synchronous driver executes the search state machine inline,
        one service call per step, in exactly the order the pre-kernel
        call stack used -- sequential-mode results are bit-identical.
        """
        trace = self._begin_search(query, target)
        steps = self.search_steps(trace, target)
        try:
            step = next(steps)
            while True:
                try:
                    result = self._perform_step(step)
                except DeliveryError as error:
                    step = steps.throw(error)
                else:
                    step = steps.send(result)
        except StopIteration:
            pass
        self._end_lookup(trace)
        return trace

    def start_async(
        self,
        query: FieldQuery,
        target: Record,
        kernel: "EventKernel",
        on_complete: Callable[[SearchTrace], None],
    ) -> SearchTrace:
        """Begin one lookup on the event kernel; returns its live trace.

        The search advances as its message exchanges complete on the
        virtual clock -- other lookups' events interleave freely in
        between -- and ``on_complete(trace)`` fires at the search's
        virtual completion time.  Retry backoff waits
        ``units * backoff_unit_ms`` on the clock (besides burning the
        usual interaction budget).
        """
        trace = self._begin_search(query, target)
        steps = self.search_steps(trace, target)

        def advance(send: bool, value: object) -> None:
            try:
                if send:
                    step = steps.send(value)
                else:
                    step = steps.throw(value)
            except StopIteration:
                self._end_lookup(trace)
                on_complete(trace)
                return
            dispatch(step)

        def dispatch(step: SearchStep) -> None:
            on_done = lambda result: advance(True, result)  # noqa: E731
            on_error = lambda error: advance(False, error)  # noqa: E731
            if isinstance(step, QueryStep):
                self.service.query_async(
                    step.query, self.user, on_done, on_error
                )
            elif isinstance(step, FetchStep):
                self.service.fetch_file_async(
                    step.msd, self.user, on_done, on_error
                )
            elif isinstance(step, ShortcutStep):
                # Best-effort, no response expected: the search moves on
                # without waiting for the insert to land.
                self.service.insert_shortcut_async(
                    step.node, step.query_key, step.msd_key, self.user
                )
                advance(True, None)
            else:  # BackoffStep
                wait_ms = step.units * self.backoff_unit_ms
                if self.tracer is not None and self.tracer.current is not None:
                    self.tracer.backoff(*self.tracer.current, wait_ms=wait_ms)
                kernel.post(wait_ms, lambda: advance(True, None))

        advance(True, None)
        return trace

    def _begin_search(self, query: FieldQuery, target: Record) -> SearchTrace:
        """Validate the request and open the trace (shared by drivers)."""
        if not query.covers_record(target):
            raise LookupError_(
                f"{query!r} does not cover the target record {target!r}"
            )
        counters.engine_searches += 1
        trace = SearchTrace(query=query, found=False)
        if self.tracer is not None:
            trace.span_id = self.tracer.begin_lookup(query.key(), self.user)
        return trace

    def _end_lookup(self, trace: SearchTrace) -> None:
        """Close the lookup's trace span with its outcome (if traced)."""
        if self.tracer is None or trace.span_id is None:
            return
        self.tracer.end_lookup(
            trace.span_id,
            found=trace.found,
            gave_up=trace.gave_up,
            cache_hit=trace.cache_hit,
            generalized=trace.generalized,
            interactions=trace.interactions,
            retries=trace.retries,
            failed_sends=trace.failed_sends,
            errors=trace.errors,
        )

    def _perform_step(self, step: SearchStep) -> object:
        """Execute one step against the synchronous service API."""
        if isinstance(step, QueryStep):
            return self.service.query(step.query, self.user)
        if isinstance(step, FetchStep):
            return self.service.fetch_file(step.msd, self.user)
        if isinstance(step, ShortcutStep):
            if self.pipelined_shortcuts:
                # Fire-and-forget through the continuation API: the
                # lookup's result does not depend on the shortcut
                # landing, so the client need not wait out one RTT per
                # traversed node (the wire transport runs these
                # concurrently on its loop).
                self.service.insert_shortcut_async(
                    step.node, step.query_key, step.msd_key, self.user
                )
            else:
                self.service.insert_shortcut(
                    step.node, step.query_key, step.msd_key, self.user
                )
            return None
        # BackoffStep: sequential mode has no clock; the budget units the
        # generator already burned *are* the backoff.
        if self.tracer is not None and self.tracer.current is not None:
            self.tracer.backoff(*self.tracer.current, wait_ms=0.0)
        return None

    def search_steps(self, trace: SearchTrace, target: Record) -> SearchSteps:
        """The search state machine: one yielded step per external action.

        The driver resumes each ``yield`` with the step's result, or
        throws the :class:`DeliveryError` a failed exchange produced.
        All trace bookkeeping happens in here, identically for every
        driver.
        """
        target_msd = FieldQuery.msd_of(target)
        target_msd_key = target_msd.key()

        current = trace.query
        if not current.is_exact():
            # A predicate query over a trie-indexed field starts its walk
            # at the deepest materialized trie node covering it -- the
            # same scheme knowledge ordinary lookups use for h(q).
            rewritten = self.service.scheme.trie_entry_for(current)
            if rewritten is not None:
                counters.trie_walks += 1
                current = rewritten
        attempted_generalizations: set[frozenset[str]] = set()
        # The node whose answer pointed us at the descriptor we are about
        # to fetch: if the fetch then comes back empty, that answer was
        # contradicted, which the trust ledger (when attached) holds
        # against the referrer.
        referrer: Optional[int] = None
        # The per-lookup timeout budget, in interaction units: every
        # exchange -- successful or failed -- and every backoff period
        # drains it.  (In async mode, backoff additionally takes virtual
        # time; the budget arithmetic is driver-independent.)
        budget = self.max_interactions
        while budget > 0:
            if current.is_msd():
                fetched, budget, exchange = yield from self._exchange_steps(
                    FetchStep(current), trace, budget
                )
                if fetched is None:
                    break
                node, found = fetched
                trace.interactions += 1
                trace.visited.append((node, current.key()))
                trace.found = found
                trace.result_msd = current.key() if found else None
                if not found and referrer is not None:
                    self._record_contradiction(referrer)
                if self.tracer is not None:
                    self.tracer.fetch_step(
                        trace.span_id,
                        exchange,
                        node=node,
                        query=current.key(),
                        found=found,
                    )
                break

            answer, budget, exchange = yield from self._exchange_steps(
                QueryStep(current), trace, budget
            )
            if answer is None:
                break
            assert isinstance(answer, QueryAnswer)
            trace.interactions += 1
            trace.visited.append((answer.node, current.key()))
            if self.tracer is not None:
                self.tracer.index_step(
                    trace.span_id,
                    exchange,
                    node=answer.node,
                    query=current.key(),
                    cache_hit=target_msd_key in answer.shortcuts,
                    entries=len(answer.entries),
                    shortcuts=len(answer.shortcuts),
                    file_found=target_msd_key in answer.entries,
                )

            if target_msd_key in answer.shortcuts:
                trace.cache_hit = True
                if trace.hit_interaction is None:
                    trace.hit_interaction = trace.interactions
                current = target_msd
                referrer = answer.node
                continue

            chosen = self._select_entry(answer.entries, target)
            if chosen is not None:
                current = chosen
                referrer = answer.node
                continue

            # No usable entry: generalize.  It counts as a *recoverable
            # error* (Table I) only when the node held nothing at all for
            # the query -- once a first lookup has seeded a cache entry
            # under this key, "subsequent queries ... do not experience an
            # error" (Section V-h) even if they must still generalize
            # because the shortcut points at a different file.
            if answer.empty:
                trace.errors += 1
            trace.generalized = True
            if not current.is_exact() and self.service.scheme.accepts(current):
                # Declared-predicate fallback (Section IV-C's substring
                # recovery, generalized): replace every non-exact
                # constraint with the target's concrete value and resume
                # down the ordinary chains.  Only schemes that declare
                # the predicate kinds opt in; elsewhere a failed
                # predicate lookup stays a plain not-found.
                counters.engine_specializations += 1
                current = current.specialize(target)
                continue
            fallback = self._generalize(current, attempted_generalizations)
            if fallback is None:
                break
            current = fallback

        if trace.found:
            yield from self._shortcut_steps(trace, target_msd_key)

    def _record_contradiction(self, referrer: int) -> None:
        """Penalize the node whose answer a later fetch contradicted."""
        trust = self.service.trust
        if trust is None:
            return
        peer = self.service.endpoint_name(referrer)
        score = trust.record_contradiction(peer)
        counters.sec_trust_updates += 1
        if self.tracer is not None:
            self.tracer.trust_update(
                peer=peer, score=score, cause="contradiction"
            )

    def explore(self, query: FieldQuery) -> list[str]:
        """One interactive step: the raw result set for a query.

        This is the *interactive* mode of Section IV-B -- the user
        inspects the returned list and refines by hand.  Returns entry
        keys (index targets first, then cached shortcuts).
        """
        answer = self.service.query(query, self.user)
        self.service.transport.meter.end_query()
        return answer.entries + answer.shortcuts

    # -- internals -----------------------------------------------------------------

    def _exchange_steps(self, step: SearchStep, trace: SearchTrace, budget: int):
        """Yield one message exchange until it succeeds, under the budget.

        On a :class:`DeliveryError` thrown in by the driver (message
        lost, or every replica of the destination key down) the exchange
        is retried up to ``max_retries`` times; each retry first burns
        its deterministic backoff from the budget (and yields a
        :class:`BackoffStep` so time-aware drivers let it elapse).
        Returns ``(result, budget_left, exchange_id)`` -- ``result`` is
        ``None`` when the exchange was abandoned, in which case the trace
        is marked ``gave_up``; ``exchange_id`` is the trace child-span id
        of the exchange (``None`` when untraced), covering the original
        transmission and every retry of it.
        """
        attempt = 0
        tracer = self.tracer
        exchange = None
        if tracer is not None and trace.span_id is not None:
            exchange = tracer.open_exchange(trace.span_id)
        while budget > 0:
            budget -= 1  # the exchange itself consumes one budget unit
            if exchange is not None:
                tracer.set_context(trace.span_id, exchange)
            try:
                result = yield step
                return result, budget, exchange
            except DeliveryError as error:
                trace.failed_sends += 1
                counters.engine_failed_sends += 1
                if exchange is not None:
                    tracer.delivery_error(
                        trace.span_id,
                        exchange,
                        reason=error.reason,
                        destination=error.destination,
                    )
                if attempt >= self.max_retries or budget <= 0:
                    break
                backoff = self.retry_backoff[
                    min(attempt, len(self.retry_backoff) - 1)
                ]
                budget -= backoff
                attempt += 1
                trace.retries += 1
                counters.engine_retries += 1
                if exchange is not None:
                    tracer.retry(
                        trace.span_id,
                        exchange,
                        attempt=attempt,
                        backoff_units=backoff,
                    )
                    # The DeliveryError arrived via a kernel continuation,
                    # so the current-span pointer is stale: re-point it at
                    # this exchange before handing the driver the backoff.
                    tracer.set_context(trace.span_id, exchange)
                yield BackoffStep(backoff)
        trace.gave_up = True
        counters.engine_gave_up += 1
        return None, budget, exchange

    def _select_entry(
        self, entries: list[str], target: Record
    ) -> Optional[FieldQuery]:
        """Pick the returned entry that matches the target record."""
        best: Optional[FieldQuery] = None
        best_rank: tuple[int, int] = (0, 0)
        for entry_key in entries:
            try:
                entry = FieldQuery.parse(self.service.schema, entry_key)
            except QueryParseError:
                continue
            if not entry.covers_record(target):
                continue
            # Prefer the most specific matching entry (an MSD if
            # present): more constrained fields first, then higher
            # predicate rank.  On exact-only entries this reduces to the
            # old field-count rule.
            rank = entry.specificity()
            if best is None or rank > best_rank:
                best, best_rank = entry, rank
        return best

    def _generalize(
        self, query: FieldQuery, attempted: set[frozenset[str]]
    ) -> Optional[FieldQuery]:
        """Find an indexed query covering ``query`` (Section IV-B).

        Candidates are proper subsets of the query's fields that form an
        index class, tried in the precomputed priority order (see
        ``__init__``); the first untried one wins.
        """
        fields = query.fields
        for keyset in self._generalization_order:
            if keyset < fields and keyset not in attempted:
                attempted.add(keyset)
                counters.engine_generalizations += 1
                return query.restrict(keyset)
        return None

    def _shortcut_steps(self, trace: SearchTrace, target_msd_key: str):
        """Yield the cache-entry creations of a successful lookup path."""
        policy = self.service.cache_policy
        if not policy.caches_enabled:
            return
        # Index nodes traversed with the query asked there; the final
        # file-fetch node belongs to the storage level, not the indexes.
        index_steps = [
            (node, key) for node, key in trace.visited if key != target_msd_key
        ]
        if not index_steps:
            return
        if policy.all_path_nodes:
            steps = index_steps
        else:
            steps = index_steps[:1]
        for node, query_key in steps:
            if self.tracer is not None and trace.span_id is not None:
                # Shortcut legs are lookup-level (no exchange child span):
                # re-point attribution at the bare lookup before sending.
                self.tracer.set_context(trace.span_id, None)
                self.tracer.cache_insert(
                    node=node, query=query_key, msd=target_msd_key
                )
            yield ShortcutStep(node, query_key, target_msd_key)
