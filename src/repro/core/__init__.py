"""Core contribution: hierarchical query-to-query indexing over a DHT.

This package implements Section IV of the paper:

- :mod:`repro.core.fields` -- descriptor schemas: the bridge between
  structured records (author/title/conference/year fields), XML
  descriptors, and canonical XPath queries;
- :mod:`repro.core.query` -- :class:`FieldQuery`, the working
  representation of a query as a set of field constraints, with covering,
  restriction, and canonical serialization (the key fed to ``h``);
- :mod:`repro.core.scheme` -- indexing schemes: DAGs of index classes
  (the *simple*, *flat*, and *complex* schemes of Figure 8, plus a
  builder for custom hierarchies and popular-content shortcuts);
- :mod:`repro.core.cache` -- per-node adaptive caches with the paper's
  three policies (multi-cache, single-cache, LRU-k);
- :mod:`repro.core.service` -- the distributed index service: insertion
  and deletion of records, node-side query resolution over the DHT
  storage layer, cache maintenance, traffic metering;
- :mod:`repro.core.engine` -- the user-side lookup engine: iterative
  search down the query partial order, target selection, cache shortcut
  jumps, and generalization/specialization for non-indexed queries;
- :mod:`repro.core.predicates` -- the typed predicate algebra over field
  constraints (:class:`Exact`, :class:`Prefix`, :class:`Wildcard`,
  :class:`Range`) with per-predicate covering;
- :mod:`repro.core.trie` -- the trie-over-DHT index: trie nodes as DHT
  keys, child expansion as lookups, range queries as bounded walks.
"""

from repro.core.cache import CacheEntry, CachePolicy, NodeCache
from repro.core.engine import LookupEngine, LookupError_, SearchTrace
from repro.core.fields import ARTICLE_SCHEMA, Record, Schema, SchemaError
from repro.core.predicates import (
    Exact,
    Prefix,
    PredicateError,
    Range,
    Wildcard,
)
from repro.core.query import FieldQuery, QueryParseError
from repro.core.scheme import (
    MSD_TARGET,
    FieldPredicates,
    IndexScheme,
    SchemeValidationError,
    article_predicates,
    complex_scheme,
    flat_scheme,
    simple_scheme,
)
from repro.core.service import IndexService, IndexServiceError
from repro.core.session import InteractiveSession, SessionError, SessionStep
from repro.core.substring import PrefixIndex, PrefixQuery
from repro.core.trie import TrieIndex

__all__ = [
    "ARTICLE_SCHEMA",
    "Record",
    "Schema",
    "SchemaError",
    "FieldQuery",
    "QueryParseError",
    "MSD_TARGET",
    "IndexScheme",
    "SchemeValidationError",
    "simple_scheme",
    "flat_scheme",
    "complex_scheme",
    "CacheEntry",
    "CachePolicy",
    "NodeCache",
    "IndexService",
    "IndexServiceError",
    "LookupEngine",
    "LookupError_",
    "SearchTrace",
    "InteractiveSession",
    "SessionError",
    "SessionStep",
    "PrefixIndex",
    "PrefixQuery",
    "Exact",
    "Prefix",
    "Wildcard",
    "Range",
    "PredicateError",
    "FieldPredicates",
    "article_predicates",
    "TrieIndex",
]
