"""Adversarial (Byzantine) fault injection over the simulated transport.

:mod:`repro.net.faults` models *benign* failure: drops, latency,
crashes.  This module adds the malicious kinds a real P2P deployment
faces, as a :class:`FaultyTransport` subclass so adversarial runs keep
every benign fault capability and the full endpoint protocol:

- **index poisoners** answer queries with fabricated entries (and serve
  forged files on fetch), replacing whatever the honest handler said;
- **lying routers** forge shortcut referrals, pointing lookups at
  descriptors that do not exist;
- **Sybil nodes** are adversary-controlled joiners: the harness floods
  them into the overlay (they become responsible for key ranges via the
  normal join/repair path) and marks them here, after which they
  withhold every answer;
- **eclipse sets** selectively drop lookup traffic (query and fetch
  requests only -- maintenance passes) addressed to victim nodes,
  cutting their replica keys off from users.

Mechanics: compromised behavior is applied to the *response* after the
honest handler ran, which models a node that participates in the
protocol but lies about its state.  Transport (frame) signatures are
deliberately **not** the modelled defence against that node: a lying
endpoint signs its forged response with its own perfectly valid key
and passes every frame check.  What ``verify=True`` models is
*content* authentication -- the end-to-end layer of
:mod:`repro.sec.entries`:

- fabricated index entries and forged referrals fail **publisher
  attestation** (each stored entry carries its publisher's ed25519
  signature over ``(index key, entry)``; a responder holds no trusted
  publisher key, so its fabrications cannot verify), and
- forged file results fail the **content-addressed descriptor** check
  (the descriptor is the hash the lookup asked for; forged content
  does not hash to it),

so those forgeries surface as a typed ``DeliveryError(VERIFY_FAILED)``
-- detected with certainty; the per-entry cost of real signature
checks is paid in the ``repro.sec`` unit tests, not re-simulated here
-- which triggers the service's replica failover and (when a trust
ledger is attached) deprioritizes the forger for future exchanges.
**Withholding is not caught**: a Sybil's empty answer is perfectly
valid signed content and is delivered even with verification on -- the
defence against it is the service's cross-replica second opinion
(contradiction tracking), not any signature.

``DeliveryError(VERIFY_FAILED)`` flows through the index service's
failover loop, which owns all trust-ledger updates (one owner, no
double penalties between transport and service).

Determinism: all choices flow through the one chaos RNG the harness
threads in (recruitment, eclipse drop draws), so adversarial cells are
bit-reproducible under a fixed seed.  A zero :class:`AdversaryPlan`
adds no draws and no per-send work beyond two falsy checks, keeping
benign runs bit-identical to :class:`FaultyTransport`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.faults import NO_FAULTS, FaultPlan, FaultyTransport, _default_crashable
from repro.net.message import Message, MessageKind
from repro.net.transport import (
    DeliveryError,
    ErrorCallback,
    ResponseCallback,
    SimulatedTransport,
)
from repro.perf import counters

#: Shortcut marker on query-response entries (mirrors
#: ``repro.core.service.SHORTCUT_MARK``; hardcoded to keep the net layer
#: from importing core, and pinned by a test).
_SHORTCUT_MARK = "~"

#: Adversary role names (values of :attr:`AdversarialTransport.roles`).
ROLE_POISONER = "poisoner"
ROLE_LIAR = "liar"
ROLE_SYBIL = "sybil"
_ROLES = (ROLE_POISONER, ROLE_LIAR, ROLE_SYBIL)

#: Message kinds an adversary corrupts / an eclipse set blocks: the
#: lookup path.  Maintenance (inserts, repair) and cache traffic pass,
#: so the overlay stays consistent and the attack is *selective*.
_LOOKUP_KINDS = (MessageKind.QUERY_REQUEST, MessageKind.FILE_REQUEST)


@dataclass(frozen=True)
class AdversaryPlan:
    """Seeded description of who misbehaves, and how.

    Counts are drawn from the node population by
    :meth:`AdversarialTransport.recruit`; ``sybil_joins`` is consumed by
    the simulation harness (Sybils must *join*, which only the harness
    can orchestrate).  ``eclipse_drop`` is the per-message drop
    probability for lookup traffic to an eclipsed victim; the default
    1.0 is a total eclipse and costs no RNG draws.
    """

    poisoners: int = 0
    liars: int = 0
    sybil_joins: int = 0
    eclipse_victims: int = 0
    eclipse_drop: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("poisoners", "liars", "sybil_joins", "eclipse_victims"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")
        if not 0.0 <= self.eclipse_drop <= 1.0:
            raise ValueError(
                f"eclipse_drop must be in [0, 1], got {self.eclipse_drop}"
            )

    @property
    def is_zero(self) -> bool:
        """True when nobody misbehaves."""
        return (
            self.poisoners == 0
            and self.liars == 0
            and self.sybil_joins == 0
            and self.eclipse_victims == 0
        )


#: The honest plan: wrapping with it is behaviourally identical to
#: :class:`FaultyTransport` (asserted by tests).
NO_ADVERSARY = AdversaryPlan()


class AdversarialTransport(FaultyTransport):
    """A :class:`FaultyTransport` whose population includes malicious nodes.

    ``verify`` models content authentication being switched on
    (publisher-signed entries and content-addressed descriptors, see
    the module docstring): *fabricated* responses raise
    ``DeliveryError(VERIFY_FAILED)`` instead of being delivered, and
    the index service's failover loop turns those into trust-ledger
    penalties and replica failovers.  Withheld (empty) answers pass --
    no signature scheme catches a node that refuses to speak.
    """

    def __init__(
        self,
        inner: SimulatedTransport,
        plan: FaultPlan = NO_FAULTS,
        adversary: AdversaryPlan = NO_ADVERSARY,
        rng: Optional[random.Random] = None,
        crashable: Callable[[list[str]], list[str]] = _default_crashable,
        verify: bool = False,
    ) -> None:
        super().__init__(inner, plan, rng, crashable)
        self.adversary = adversary
        self.verify = verify
        #: endpoint name -> adversary role, for every compromised node.
        self.roles: dict[str, str] = {}
        #: endpoint names whose lookup traffic the eclipse set blocks.
        self.eclipsed: set[str] = set()
        self._forge_serial = 0

    # -- population control -------------------------------------------------

    def mark(self, name: str, role: str) -> None:
        """Put ``name`` under adversary control with the given role."""
        if role not in _ROLES:
            raise ValueError(f"unknown adversary role: {role!r}")
        self.roles[name] = role

    def eclipse(self, name: str) -> None:
        """Add ``name`` to the eclipse set (its lookups get dropped)."""
        self.eclipsed.add(name)

    def recruit(self, candidates: list[str]) -> None:
        """Draw the planned poisoners/liars/eclipse victims from
        ``candidates`` with the chaos RNG.

        Selection is disjoint (a node holds one role; an eclipse victim
        is honest -- eclipsing a node the adversary controls would help
        the defenders).  Deterministic: same candidates + same RNG state
        -> same population.
        """
        pool = list(candidates)
        plan = self.adversary
        wanted = plan.poisoners + plan.liars + plan.eclipse_victims
        if wanted > len(pool):
            raise ValueError(
                f"cannot recruit {wanted} adversarial roles from "
                f"{len(pool)} candidates"
            )
        chosen = self._rng.sample(pool, wanted)
        cursor = 0
        for _ in range(plan.poisoners):
            self.mark(chosen[cursor], ROLE_POISONER)
            cursor += 1
        for _ in range(plan.liars):
            self.mark(chosen[cursor], ROLE_LIAR)
            cursor += 1
        for _ in range(plan.eclipse_victims):
            self.eclipse(chosen[cursor])
            cursor += 1

    # -- delivery -----------------------------------------------------------

    def send(self, message: Message) -> Optional[Message]:
        if self.eclipsed and self._eclipse_blocks(message):
            self._advance_schedule()
            self.sends += 1
            counters.sec_eclipse_drops += 1
            # The sender spent the request bytes; the victim never saw
            # them.  To the caller this is an ordinary transient drop --
            # an eclipse is indistinguishable from loss, which is what
            # makes it insidious.
            self.inner.meter.record(message)
            raise DeliveryError(DeliveryError.DROPPED, message.destination)
        response = super().send(message)
        if not self.roles or response is None:
            return response
        role = self.roles.get(message.destination)
        if role is None or message.kind not in _LOOKUP_KINDS:
            return response
        return self._corrupt(message, response, role)

    def send_async(
        self,
        message: Message,
        on_result: ResponseCallback,
        on_error: ErrorCallback,
    ) -> None:
        if self.eclipsed and self._eclipse_blocks(message):
            self._advance_schedule()
            self.sends += 1
            counters.sec_eclipse_drops += 1
            self.inner.meter.record(message)
            kernel = self.inner.kernel
            if kernel is None:
                raise RuntimeError("send_async requires bind_clock() first")
            delay = self.inner._hop_delay(message)
            if self.inner.tracer is not None:
                self.inner._trace_hop(
                    message, "request", delay, use_current=True
                )
            kernel.post(
                delay,
                lambda: on_error(
                    DeliveryError(DeliveryError.DROPPED, message.destination)
                ),
            )
            return
        role = self.roles.get(message.destination) if self.roles else None
        if role is None or message.kind not in _LOOKUP_KINDS:
            super().send_async(message, on_result, on_error)
            return

        def deliver(response: Optional[Message]) -> None:
            if response is None:
                on_result(None)
                return
            try:
                on_result(self._corrupt(message, response, role))
            except DeliveryError as error:
                on_error(error)

        super().send_async(message, deliver, on_error)

    # -- adversarial behavior ------------------------------------------------

    def _eclipse_blocks(self, message: Message) -> bool:
        if message.destination not in self.eclipsed:
            return False
        if message.kind not in _LOOKUP_KINDS:
            return False
        drop = self.adversary.eclipse_drop
        return drop >= 1.0 or self._rng.random() < drop

    def _corrupt(
        self, message: Message, response: Message, role: str
    ) -> Message:
        """Replace an honest response with the role's forgery -- or, with
        content verification on, reject the *fabrications* among them.

        Withholding (the Sybil behavior) is never rejected here: an
        empty answer is valid signed content whoever sends it, so it is
        delivered in both modes and left to the service's cross-replica
        second opinion.
        """
        if role == ROLE_SYBIL and message.kind is not MessageKind.FILE_REQUEST:
            # Sybils withhold: they hold real key ranges (the join/repair
            # path replicated entries onto them) but answer with nothing.
            # No signature catches this -- the forged answer contains no
            # forged content -- so it passes even with verify on.
            counters.sec_poisoned_answers += 1
            return self._forged_response(response, ())
        if self.verify:
            # The forgery would carry fabricated content: index entries
            # without a valid publisher attestation, or file bytes that
            # do not hash to the content-addressed descriptor.  Either
            # way the client detects it with certainty.
            counters.sec_verify_failures += 1
            tracer = self.inner.tracer
            if tracer is not None:
                tracer.sec_verify_fail(
                    destination=message.destination, role=role
                )
            raise DeliveryError(
                DeliveryError.VERIFY_FAILED, message.destination
            )
        self._forge_serial += 1
        serial = self._forge_serial
        if message.kind is MessageKind.FILE_REQUEST:
            # Serve a forged file: claim the descriptor is stored
            # regardless of truth.  The caller sees found=True and walks
            # away with attacker-controlled bytes.
            key = str(message.payload[0]) if message.payload else "forged"
            counters.sec_poisoned_results += 1
            tracer = self.inner.tracer
            if tracer is not None:
                tracer.poisoned_result(
                    destination=message.destination, key=key
                )
            payload: tuple[str, ...] = (key,)
        elif role == ROLE_LIAR:
            # A forged referral hop: a shortcut to a descriptor that was
            # never published.  The engine ignores referrals that do not
            # match its target, so the exchange is wasted -- and the
            # honest entries the node should have returned are gone.
            counters.sec_forged_referrals += 1
            payload = (f"{_SHORTCUT_MARK}forged:{serial}",)
        else:  # poisoner
            # Fabricated index entries.  They parse as garbage (or cover
            # nothing), so the lookup burns its budget chasing them
            # while the honest entries are suppressed.
            counters.sec_poisoned_answers += 1
            payload = (f"poison={serial}", f"poison={serial + 1000000}")
        return self._forged_response(response, payload)

    @staticmethod
    def _forged_response(
        response: Message, payload: tuple[str, ...]
    ) -> Message:
        return Message(
            kind=response.kind,
            source=response.source,
            destination=response.destination,
            payload=payload,
            route_hops=response.route_hops,
            category=response.category,
        )
