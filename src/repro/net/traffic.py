"""Traffic and per-node load accounting.

Two of the paper's figures are pure accounting:

- Figure 12 sums the bytes of all messages a query generates, split into
  *normal* and *cache* traffic; and
- Figure 15 counts, for each node, the percentage of the 50,000 issued
  queries that touched it (summing to more than 100% because one user
  query fans out into several index interactions).

:class:`TrafficMeter` accumulates both views.  The simulation calls
:meth:`TrafficMeter.record` for every message the indexing layer sends or
receives, and :meth:`TrafficMeter.touch_node` whenever a query is processed
by a node.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.net.message import Message, TrafficCategory


@dataclass
class NodeLoad:
    """Per-node processing counters (Figure 15 / hot-spot analysis)."""

    messages: int = 0
    queries_touched: int = 0
    bytes_in: int = 0
    bytes_out: int = 0


class TrafficMeter:
    """Accumulates byte counts by category and load by node."""

    def __init__(self) -> None:
        self._bytes: Counter[TrafficCategory] = Counter()
        self._messages: Counter[TrafficCategory] = Counter()
        self._node_loads: dict[str, NodeLoad] = {}
        # Nodes touched by the query currently being processed; flushed
        # into queries_touched by end_query().
        self._current_query_nodes: set[str] = set()

    # -- byte accounting ---------------------------------------------------

    def record(self, message: Message) -> None:
        """Account one message's bytes to its traffic category.

        Called once per message -- millions of times in a large run --
        so it avoids the throwaway ``NodeLoad()`` that ``setdefault``
        would construct on every call for already-known endpoints.
        """
        size = message.size_bytes
        category = message.category
        self._bytes[category] += size
        self._messages[category] += 1
        loads = self._node_loads
        destination = loads.get(message.destination)
        if destination is None:
            destination = loads[message.destination] = NodeLoad()
        destination.messages += 1
        destination.bytes_in += size
        source = loads.get(message.source)
        if source is None:
            source = loads[message.source] = NodeLoad()
        source.bytes_out += size

    def bytes_for(self, category: TrafficCategory) -> int:
        """Total bytes recorded in one category."""
        return self._bytes[category]

    def messages_for(self, category: TrafficCategory) -> int:
        """Number of messages recorded in one category."""
        return self._messages[category]

    @property
    def normal_bytes(self) -> int:
        return self._bytes[TrafficCategory.NORMAL]

    @property
    def cache_bytes(self) -> int:
        return self._bytes[TrafficCategory.CACHE]

    @property
    def total_bytes(self) -> int:
        return sum(self._bytes.values())

    # -- per-node / per-query load -----------------------------------------

    def touch_node(self, node: str) -> None:
        """Mark that the current query was processed by ``node``."""
        self._current_query_nodes.add(node)

    def end_query(self) -> None:
        """Flush the set of nodes touched by the query just completed."""
        self.count_query(self._current_query_nodes)
        self._current_query_nodes.clear()

    def count_query(self, nodes: set[str]) -> None:
        """Credit one completed query to every node in ``nodes``.

        Concurrent lookups each carry their own touched-node set (the
        shared ``touch_node`` scratch set cannot tell overlapping
        queries apart), and flush it here when the lookup completes.
        """
        loads = self._node_loads
        for node in nodes:
            load = loads.get(node)
            if load is None:
                load = loads[node] = NodeLoad()
            load.queries_touched += 1

    def node_load(self, node: str) -> NodeLoad:
        """The per-node counters for one endpoint."""
        return self._node_loads.setdefault(node, NodeLoad())

    def query_counts_by_node(self) -> dict[str, int]:
        """Map node -> number of distinct queries that touched it."""
        return {
            node: load.queries_touched
            for node, load in self._node_loads.items()
            if load.queries_touched
        }

    def reset(self) -> None:
        """Clear every counter."""
        self._bytes.clear()
        self._messages.clear()
        self._node_loads.clear()
        self._current_query_nodes.clear()
