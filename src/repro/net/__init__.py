"""Simulated network substrate.

The paper's evaluation abstracts the physical network away and reports
application-level traffic: bytes of queries and responses exchanged between
the user and the indexing system, split into *normal* and *cache* traffic
(Figure 12).  This package provides the pieces that make those measurements
reproducible:

- :mod:`repro.net.message` -- typed messages with a deterministic byte-size
  model (query/response/cache-insert payloads),
- :mod:`repro.net.traffic` -- traffic meters aggregating bytes by category
  and per-node message counts (Figures 12 and 15),
- :mod:`repro.net.transport` -- an in-process transport that routes
  messages between registered endpoints while metering them,
- :mod:`repro.net.faults` -- deterministic fault injection (message
  loss, duplicates, added latency, crash/rejoin schedules) wrapping the
  transport behind the same endpoint protocol,
- :mod:`repro.net.latency` -- pluggable link-latency models so substrate
  experiments can report lookup delays.
"""

from repro.net.faults import (
    MS_PER_TICK,
    NO_FAULTS,
    CrashEvent,
    FaultPlan,
    FaultyTransport,
    RestartEvent,
)
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    SeededUniformLatency,
    ZeroLatency,
    parse_latency_model,
)
from repro.net.message import Message, MessageKind, TrafficCategory
from repro.net.traffic import NodeLoad, TrafficMeter
from repro.net.transport import (
    DeliveryError,
    Endpoint,
    SimulatedTransport,
    TransportError,
)

__all__ = [
    "Message",
    "MessageKind",
    "TrafficCategory",
    "NodeLoad",
    "TrafficMeter",
    "Endpoint",
    "SimulatedTransport",
    "TransportError",
    "DeliveryError",
    "NO_FAULTS",
    "CrashEvent",
    "FaultPlan",
    "FaultyTransport",
    "RestartEvent",
    "MS_PER_TICK",
    "ConstantLatency",
    "LatencyModel",
    "SeededUniformLatency",
    "ZeroLatency",
    "parse_latency_model",
]
