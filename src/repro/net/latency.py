"""Link-latency models for substrate experiments.

The paper deliberately excludes DHT lookup latency from its evaluation
("any optimization of the underlying P2P network ... will improve the
response time ... but these are completely independent issues").  The
latency models here exist for the substrate-independence ablation, where
we *do* report how lookup delay scales with hop count under Chord and
Kademlia, to substantiate that the indexing layer is latency-neutral.
"""

from __future__ import annotations

import random
from typing import Protocol


class LatencyModel(Protocol):
    """Yields a one-way delay (in milliseconds) for a single hop."""

    def sample(self, source: str, destination: str) -> float:
        """Latency of a message from ``source`` to ``destination``."""
        ...


class ConstantLatency:
    """Every hop costs the same fixed delay."""

    def __init__(self, milliseconds: float = 50.0) -> None:
        if milliseconds < 0:
            raise ValueError("latency cannot be negative")
        self.milliseconds = milliseconds

    def sample(self, source: str, destination: str) -> float:
        """Latency of one hop (constant)."""
        return self.milliseconds


class SeededUniformLatency:
    """Per-pair latency drawn once from a uniform range, then fixed.

    Each (source, destination) pair gets a stable delay, so repeated
    traversals of the same overlay path cost the same -- a reasonable
    stand-in for static Internet path latencies.
    """

    def __init__(
        self, low: float = 10.0, high: float = 100.0, seed: int = 0
    ) -> None:
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high
        self.seed = seed
        self._cache: dict[tuple[str, str], float] = {}

    def sample(self, source: str, destination: str) -> float:
        """Latency of one hop (stable per source-destination pair)."""
        if source == destination:
            return 0.0
        pair = (source, destination)
        if pair not in self._cache:
            generator = random.Random((hash(pair) ^ self.seed) & 0xFFFFFFFF)
            self._cache[pair] = generator.uniform(self.low, self.high)
        return self._cache[pair]
