"""Link-latency models for substrate experiments.

The paper deliberately excludes DHT lookup latency from its evaluation
("any optimization of the underlying P2P network ... will improve the
response time ... but these are completely independent issues").  The
latency models here exist for the substrate-independence ablation, where
we *do* report how lookup delay scales with hop count under Chord and
Kademlia, to substantiate that the indexing layer is latency-neutral.
"""

from __future__ import annotations

import random
import zlib
from typing import Protocol


class LatencyModel(Protocol):
    """Yields a one-way delay (in milliseconds) for a single hop."""

    def sample(self, source: str, destination: str) -> float:
        """Latency of a message from ``source`` to ``destination``."""
        ...


class ZeroLatency:
    """Every hop is instantaneous.

    The event-kernel equivalent of the paper's synchronous feed: with
    zero hop delay, event order degenerates to scheduling order, which
    is how sequential-mode equivalence is guaranteed.
    """

    def sample(self, source: str, destination: str) -> float:
        """Latency of one hop (always zero)."""
        return 0.0


class ConstantLatency:
    """Every hop costs the same fixed delay."""

    def __init__(self, milliseconds: float = 50.0) -> None:
        if milliseconds < 0:
            raise ValueError("latency cannot be negative")
        self.milliseconds = milliseconds

    def sample(self, source: str, destination: str) -> float:
        """Latency of one hop (constant)."""
        return self.milliseconds


class SeededUniformLatency:
    """Per-pair latency drawn once from a uniform range, then fixed.

    Each (source, destination) pair gets a stable delay, so repeated
    traversals of the same overlay path cost the same -- a reasonable
    stand-in for static Internet path latencies.
    """

    def __init__(
        self, low: float = 10.0, high: float = 100.0, seed: int = 0
    ) -> None:
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high
        self.seed = seed
        self._cache: dict[tuple[str, str], float] = {}

    def sample(self, source: str, destination: str) -> float:
        """Latency of one hop (stable per source-destination pair)."""
        if source == destination:
            return 0.0
        pair = (source, destination)
        if pair not in self._cache:
            # crc32, not hash(): string hashing is salted per process, and
            # per-pair delays must be identical across repeated runs for
            # the determinism guarantees of the event kernel.
            digest = zlib.crc32(f"{source}\x00{destination}".encode("utf-8"))
            generator = random.Random((digest ^ self.seed) & 0xFFFFFFFF)
            self._cache[pair] = generator.uniform(self.low, self.high)
        return self._cache[pair]


def parse_latency_model(spec: str, seed: int = 0) -> LatencyModel:
    """Build a latency model from a compact CLI/config spec string.

    Accepted forms::

        zero                    no hop delay (the default)
        constant[:MS]           fixed delay, default 50 ms
        uniform[:LOW:HIGH]      stable per-pair delay in [LOW, HIGH] ms,
                                default [10, 100]

    ``seed`` feeds the uniform model so two runs with the same
    configuration draw identical per-pair delays.
    """
    name, _, rest = spec.partition(":")
    parts = rest.split(":") if rest else []
    try:
        if name == "zero" and not parts:
            return ZeroLatency()
        if name == "constant" and len(parts) <= 1:
            return ConstantLatency(float(parts[0])) if parts else ConstantLatency()
        if name == "uniform" and len(parts) in (0, 2):
            if parts:
                return SeededUniformLatency(
                    float(parts[0]), float(parts[1]), seed=seed
                )
            return SeededUniformLatency(seed=seed)
    except ValueError as error:
        raise ValueError(f"bad latency model spec {spec!r}: {error}") from None
    raise ValueError(
        f"unknown latency model {spec!r} "
        "(expected zero | constant[:MS] | uniform[:LOW:HIGH])"
    )
