"""Deterministic fault injection over the simulated transport.

The paper treats index entries as soft state over a churning peer
population ("nodes can fail", Section IV-C) but evaluates on a perfectly
reliable network.  This module supplies the missing failure model as a
wrapper -- :class:`FaultyTransport` exposes the same endpoint protocol as
:class:`repro.net.transport.SimulatedTransport`, so the whole stack runs
unchanged over it -- driven by a seeded :class:`FaultPlan`:

- per-message *drop* probability (request or response lost in flight),
- per-exchange *duplicate* delivery (the destination handles the message
  twice, as a retransmitting network would cause),
- added *latency ticks* per delivered message (interaction-count based;
  the simulation has no wall clock),
- a *crash/rejoin schedule*: endpoints marked crashed stay registered but
  refuse delivery until they recover, which is exactly the window in
  which replica failover and lookup retries must carry the load.

Every injected fault raises the typed
:class:`repro.net.transport.DeliveryError` (never the hard
:class:`TransportError`) and increments a :mod:`repro.perf` counter, so
chaos runs are measured, not estimated.  All randomness flows through one
``random.Random`` -- either the plan's seed or an instance threaded in by
the simulation -- making every chaos run bit-reproducible.

A zero :class:`FaultPlan` is guaranteed transparent: no random draws, no
counter increments, byte-identical metering to the bare transport.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.message import Message
from repro.net.traffic import TrafficMeter
from repro.net.transport import DeliveryError, Endpoint, SimulatedTransport
from repro.perf import counters


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled crash: at the ``at_send``-th send, ``victim`` goes
    down for the next ``downtime_sends`` sends, then rejoins.

    ``victim=None`` picks a random crashable endpoint (by default any
    ``node:``-named one) at fire time, using the transport's RNG.
    """

    at_send: int
    downtime_sends: int
    victim: Optional[str] = None

    def __post_init__(self) -> None:
        if self.at_send < 0 or self.downtime_sends < 1:
            raise ValueError("need at_send >= 0 and downtime_sends >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of what goes wrong, and how often."""

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    max_latency_ticks: int = 0
    crash_schedule: tuple[CrashEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_probability", "duplicate_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.max_latency_ticks < 0:
            raise ValueError("max_latency_ticks cannot be negative")

    @property
    def is_zero(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.drop_probability == 0.0
            and self.duplicate_probability == 0.0
            and self.max_latency_ticks == 0
            and not self.crash_schedule
        )


#: The transparent plan: wrapping with it is behaviourally identical to
#: the bare transport (asserted by tests).
NO_FAULTS = FaultPlan()


def _default_crashable(names: list[str]) -> list[str]:
    """Endpoints eligible for random crash selection: index nodes only."""
    return [name for name in names if name.startswith("node:")]


class FaultyTransport:
    """A :class:`SimulatedTransport` wrapper that injects planned faults.

    Implements the same endpoint protocol (register / unregister /
    is_registered / endpoint_names / send / meter), so services and
    engines built for the plain transport run over it unchanged.
    """

    def __init__(
        self,
        inner: SimulatedTransport,
        plan: FaultPlan = NO_FAULTS,
        rng: Optional[random.Random] = None,
        crashable: Callable[[list[str]], list[str]] = _default_crashable,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self._rng = rng if rng is not None else random.Random(plan.seed)
        self._crashable = crashable
        self._crashed: set[str] = set()
        self.sends = 0
        #: Total injected latency, in abstract ticks (no wall clock).
        self.latency_ticks = 0
        self._pending_crashes = sorted(
            plan.crash_schedule, key=lambda event: event.at_send
        )
        self._pending_recoveries: list[tuple[int, str]] = []

    # -- endpoint protocol (delegation) ------------------------------------

    @property
    def meter(self) -> TrafficMeter:
        return self.inner.meter

    def register(self, name: str, endpoint: Endpoint) -> None:
        """Attach an endpoint on the wrapped transport."""
        self.inner.register(name, endpoint)

    def unregister(self, name: str) -> None:
        """Detach an endpoint; a crashed one departs un-crashed."""
        self.inner.unregister(name)
        self._crashed.discard(name)

    def is_registered(self, name: str) -> bool:
        """True when the wrapped transport knows this endpoint."""
        return self.inner.is_registered(name)

    @property
    def endpoint_names(self) -> list[str]:
        return self.inner.endpoint_names

    # -- crash state --------------------------------------------------------

    def fail_node(self, name: str) -> None:
        """Mark an endpoint crashed: registered, but refusing delivery."""
        self._crashed.add(name)

    def recover_node(self, name: str) -> None:
        """Bring a crashed endpoint back up."""
        self._crashed.discard(name)

    def is_crashed(self, name: str) -> bool:
        """True while an endpoint is in its crash window."""
        return name in self._crashed

    @property
    def crashed_endpoints(self) -> set[str]:
        return set(self._crashed)

    # -- delivery -----------------------------------------------------------

    def send(self, message: Message) -> Optional[Message]:
        """Deliver through the inner transport, injecting planned faults.

        Fault accounting rules (asserted by tests):

        - a dropped *request* still meters its request bytes (the sender
          spent them) but the handler never runs;
        - a dropped *response* meters both sides (the node did the work
          and transmitted) yet the caller sees a :class:`DeliveryError`;
        - a duplicated message runs the handler twice and meters both
          deliveries;
        - a send to a crashed endpoint meters the request bytes and
          raises with reason ``crashed`` so callers fail over.
        """
        self._advance_schedule()
        self.sends += 1
        plan = self.plan
        if message.destination in self._crashed:
            counters.fault_crashed_sends += 1
            self.inner.meter.record(message)
            raise DeliveryError(DeliveryError.CRASHED, message.destination)
        if (
            plan.drop_probability
            and self._rng.random() < plan.drop_probability
        ):
            counters.fault_drops += 1
            self.inner.meter.record(message)
            raise DeliveryError(DeliveryError.DROPPED, message.destination)
        if plan.max_latency_ticks:
            ticks = self._rng.randint(0, plan.max_latency_ticks)
            self.latency_ticks += ticks
            counters.fault_latency_ticks += ticks
        response = self.inner.send(message)
        if (
            plan.duplicate_probability
            and self._rng.random() < plan.duplicate_probability
        ):
            counters.fault_duplicates += 1
            self.inner.send(message)
        if (
            response is not None
            and plan.drop_probability
            and self._rng.random() < plan.drop_probability
        ):
            counters.fault_drops += 1
            raise DeliveryError(DeliveryError.DROPPED, message.destination)
        return response

    def _advance_schedule(self) -> None:
        """Fire crash/recovery events scheduled at the current send."""
        while self._pending_recoveries and (
            self._pending_recoveries[0][0] <= self.sends
        ):
            _, name = self._pending_recoveries.pop(0)
            self.recover_node(name)
        while self._pending_crashes and (
            self._pending_crashes[0].at_send <= self.sends
        ):
            event = self._pending_crashes.pop(0)
            victim = event.victim
            if victim is None:
                candidates = [
                    name
                    for name in self._crashable(self.inner.endpoint_names)
                    if name not in self._crashed
                ]
                if not candidates:
                    continue
                victim = candidates[self._rng.randrange(len(candidates))]
            self.fail_node(victim)
            recover_at = self.sends + event.downtime_sends
            self._pending_recoveries.append((recover_at, victim))
            self._pending_recoveries.sort()
