"""Deterministic fault injection over the simulated transport.

The paper treats index entries as soft state over a churning peer
population ("nodes can fail", Section IV-C) but evaluates on a perfectly
reliable network.  This module supplies the missing failure model as a
wrapper -- :class:`FaultyTransport` exposes the same endpoint protocol as
:class:`repro.net.transport.SimulatedTransport`, so the whole stack runs
unchanged over it -- driven by a seeded :class:`FaultPlan`:

- per-message *drop* probability (request or response lost in flight),
- per-exchange *duplicate* delivery (the destination handles the message
  twice, as a retransmitting network would cause),
- added *latency milliseconds* per delivered message, on the same
  virtual clock the event kernel uses (the legacy unit-less "ticks" are
  accepted as a deprecated alias converting at :data:`MS_PER_TICK`),
- a *crash/rejoin schedule*: endpoints marked crashed stay registered but
  refuse delivery until they recover, which is exactly the window in
  which replica failover and lookup retries must carry the load,
- a *restart schedule*: like a crash, but the victim's process dies
  (SIGKILL semantics -- in-memory state is gone; ``power_loss=True``
  additionally destroys un-synced WAL bytes).  The transport only
  marks the outage window and fires the :attr:`FaultyTransport.on_kill`
  / :attr:`FaultyTransport.on_restart` hooks; what state survives is
  the harness's business (see :mod:`repro.storage.durable`).

Every injected fault raises the typed
:class:`repro.net.transport.DeliveryError` (never the hard
:class:`TransportError`) and increments a :mod:`repro.perf` counter, so
chaos runs are measured, not estimated.  All randomness flows through one
``random.Random`` -- either the plan's seed or an instance threaded in by
the simulation -- making every chaos run bit-reproducible.

A zero :class:`FaultPlan` is guaranteed transparent: no random draws, no
counter increments, byte-identical metering to the bare transport.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import InitVar, dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.net.message import Message
from repro.net.traffic import TrafficMeter
from repro.net.transport import (
    DeliveryError,
    Endpoint,
    ErrorCallback,
    ResponseCallback,
    SimulatedTransport,
)
from repro.perf import counters

if TYPE_CHECKING:
    from repro.net.latency import LatencyModel
    from repro.obs.tracer import Tracer
    from repro.sim.kernel import EventKernel

#: Conversion rate of the deprecated unit-less latency "ticks" to virtual
#: milliseconds: one tick is one millisecond on the shared clock.
MS_PER_TICK = 1.0


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled crash: at the ``at_send``-th send, ``victim`` goes
    down for the next ``downtime_sends`` sends, then rejoins.

    ``victim=None`` picks a random crashable endpoint (by default any
    ``node:``-named one) at fire time, using the transport's RNG.
    """

    at_send: int
    downtime_sends: int
    victim: Optional[str] = None

    def __post_init__(self) -> None:
        if self.at_send < 0 or self.downtime_sends < 1:
            raise ValueError("need at_send >= 0 and downtime_sends >= 1")


@dataclass(frozen=True)
class RestartEvent:
    """One scheduled process restart: at the ``at_send``-th send the
    ``victim`` is killed -- SIGKILL semantics, so unlike a
    :class:`CrashEvent` its in-memory state does not survive -- stays
    down for ``downtime_sends`` sends, then restarts and recovers
    whatever it persisted.  ``power_loss=True`` models the plug being
    pulled mid-write: the un-fsynced tail of the victim's write-ahead
    log is destroyed too.

    ``victim=None`` picks a random crashable endpoint at fire time.
    """

    at_send: int
    downtime_sends: int
    victim: Optional[str] = None
    power_loss: bool = False

    def __post_init__(self) -> None:
        if self.at_send < 0 or self.downtime_sends < 1:
            raise ValueError("need at_send >= 0 and downtime_sends >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of what goes wrong, and how often.

    Added latency is expressed in virtual-clock milliseconds
    (``max_latency_ms``).  The pre-kernel ``max_latency_ticks`` keyword
    is still accepted as a deprecated alias and converts at
    :data:`MS_PER_TICK`.
    """

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    max_latency_ms: float = 0.0
    crash_schedule: tuple[CrashEvent, ...] = ()
    restart_schedule: tuple[RestartEvent, ...] = ()
    seed: int = 0
    max_latency_ticks: InitVar[Optional[int]] = None

    def __post_init__(self, max_latency_ticks: Optional[int]) -> None:
        if max_latency_ticks is not None:
            warnings.warn(
                "FaultPlan(max_latency_ticks=...) is deprecated; use "
                "max_latency_ms (1 tick = 1 ms on the virtual clock)",
                DeprecationWarning,
                stacklevel=2,
            )
            if self.max_latency_ms:
                raise ValueError(
                    "give max_latency_ms or max_latency_ticks, not both"
                )
            object.__setattr__(
                self, "max_latency_ms", max_latency_ticks * MS_PER_TICK
            )
        for name in ("drop_probability", "duplicate_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.max_latency_ms < 0:
            raise ValueError("max_latency_ms cannot be negative")

    @property
    def is_zero(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.drop_probability == 0.0
            and self.duplicate_probability == 0.0
            and self.max_latency_ms == 0.0
            and not self.crash_schedule
            and not self.restart_schedule
        )


#: The transparent plan: wrapping with it is behaviourally identical to
#: the bare transport (asserted by tests).
NO_FAULTS = FaultPlan()


def _default_crashable(names: list[str]) -> list[str]:
    """Endpoints eligible for random crash selection: index nodes only."""
    return [name for name in names if name.startswith("node:")]


class FaultyTransport:
    """A :class:`SimulatedTransport` wrapper that injects planned faults.

    Implements the same endpoint protocol (register / unregister /
    is_registered / endpoint_names / send / meter), so services and
    engines built for the plain transport run over it unchanged.
    """

    def __init__(
        self,
        inner: SimulatedTransport,
        plan: FaultPlan = NO_FAULTS,
        rng: Optional[random.Random] = None,
        crashable: Callable[[list[str]], list[str]] = _default_crashable,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self._rng = rng if rng is not None else random.Random(plan.seed)
        self._crashable = crashable
        self._crashed: set[str] = set()
        self.sends = 0
        #: Total injected latency, in virtual-clock milliseconds.
        self.latency_ms = 0.0
        self._pending_crashes = sorted(
            plan.crash_schedule, key=lambda event: event.at_send
        )
        self._pending_recoveries: list[tuple[int, str]] = []
        self._pending_restarts = sorted(
            plan.restart_schedule, key=lambda event: event.at_send
        )
        self._pending_restart_recoveries: list[tuple[int, str, bool]] = []
        #: Invoked as ``on_kill(name, power_loss)`` the moment a
        #: scheduled restart takes ``name`` down -- the harness's chance
        #: to drop (and, under power loss, tear) the victim's journal.
        self.on_kill: Optional[Callable[[str, bool], None]] = None
        #: Invoked as ``on_restart(name, power_loss)`` when the victim's
        #: downtime elapses, *after* delivery is re-enabled -- the
        #: harness's chance to replay persisted state and re-replicate.
        self.on_restart: Optional[Callable[[str, bool], None]] = None

    # -- endpoint protocol (delegation) ------------------------------------

    @property
    def meter(self) -> TrafficMeter:
        return self.inner.meter

    @property
    def tracer(self) -> Optional["Tracer"]:
        return self.inner.tracer

    def bind_tracer(self, tracer: Optional["Tracer"]) -> None:
        """Attach the lookup tracer on the wrapped transport."""
        self.inner.bind_tracer(tracer)

    def register(self, name: str, endpoint: Endpoint) -> None:
        """Attach an endpoint on the wrapped transport."""
        self.inner.register(name, endpoint)

    def unregister(self, name: str) -> None:
        """Detach an endpoint; a crashed one departs un-crashed."""
        self.inner.unregister(name)
        self._crashed.discard(name)

    def is_registered(self, name: str) -> bool:
        """True when the wrapped transport knows this endpoint."""
        return self.inner.is_registered(name)

    @property
    def endpoint_names(self) -> list[str]:
        return self.inner.endpoint_names

    # -- crash state --------------------------------------------------------

    def fail_node(self, name: str) -> None:
        """Mark an endpoint crashed: registered, but refusing delivery."""
        self._crashed.add(name)

    def recover_node(self, name: str) -> None:
        """Bring a crashed endpoint back up."""
        self._crashed.discard(name)

    def is_crashed(self, name: str) -> bool:
        """True while an endpoint is in its crash window."""
        return name in self._crashed

    @property
    def crashed_endpoints(self) -> set[str]:
        return set(self._crashed)

    # -- delivery -----------------------------------------------------------

    def send(self, message: Message) -> Optional[Message]:
        """Deliver through the inner transport, injecting planned faults.

        Fault accounting rules (asserted by tests):

        - a dropped *request* still meters its request bytes (the sender
          spent them) but the handler never runs;
        - a dropped *response* meters both sides (the node did the work
          and transmitted) yet the caller sees a :class:`DeliveryError`;
        - a duplicated message runs the handler twice and meters both
          deliveries;
        - a send to a crashed endpoint meters the request bytes and
          raises with reason ``crashed`` so callers fail over.
        """
        self._advance_schedule()
        self.sends += 1
        plan = self.plan
        if message.destination in self._crashed:
            counters.fault_crashed_sends += 1
            self.inner.meter.record(message)
            raise DeliveryError(DeliveryError.CRASHED, message.destination)
        if (
            plan.drop_probability
            and self._rng.random() < plan.drop_probability
        ):
            counters.fault_drops += 1
            self.inner.meter.record(message)
            raise DeliveryError(DeliveryError.DROPPED, message.destination)
        if plan.max_latency_ms:
            added_ms = self._draw_latency_ms()
            self.latency_ms += added_ms
            counters.fault_latency_ms += added_ms
        response = self.inner.send(message)
        if (
            plan.duplicate_probability
            and self._rng.random() < plan.duplicate_probability
        ):
            counters.fault_duplicates += 1
            # Duplicate legs are unattributed, matching the async path.
            tracer = self.inner.tracer
            if tracer is not None:
                with tracer.activated(None):
                    self.inner.send(message)
            else:
                self.inner.send(message)
        if (
            response is not None
            and plan.drop_probability
            and self._rng.random() < plan.drop_probability
        ):
            counters.fault_drops += 1
            raise DeliveryError(DeliveryError.DROPPED, message.destination)
        return response

    def _draw_latency_ms(self) -> float:
        """One added-latency draw from the plan's seeded RNG."""
        return self._rng.uniform(0.0, self.plan.max_latency_ms)

    # -- virtual-time delivery ---------------------------------------------

    @property
    def kernel(self) -> Optional["EventKernel"]:
        return self.inner.kernel

    def bind_clock(
        self, kernel: "EventKernel", latency: "LatencyModel"
    ) -> None:
        """Attach the event kernel and latency model (delegated)."""
        self.inner.bind_clock(kernel, latency)

    def send_async(
        self,
        message: Message,
        on_result: ResponseCallback,
        on_error: ErrorCallback,
    ) -> None:
        """Scheduled delivery with planned faults on the virtual clock.

        Mirrors :meth:`send` fault-for-fault, with time made explicit:

        - crashed destination / dropped request: request bytes metered,
          ``on_error`` fires after the request's one-way delay (the
          idealized timeout of the failure detector);
        - injected latency is added to the request leg's travel time (and
          accounted in ``latency_ms`` exactly like the sync path);
        - a duplicated request is a second scheduled delivery whose
          response is discarded;
        - a dropped *response* is decided when the response leg arrives:
          the work and bytes were spent, the caller still sees the error.

        All draws happen at send time except the response drop (drawn at
        response arrival), so fault sequences are a deterministic
        function of the kernel's event order.
        """
        self._advance_schedule()
        self.sends += 1
        plan = self.plan
        kernel = self.inner.kernel
        if kernel is None:
            raise RuntimeError("send_async requires bind_clock() first")
        if message.destination in self._crashed:
            counters.fault_crashed_sends += 1
            self.inner.meter.record(message)
            delay = self.inner._hop_delay(message)
            # The failed request leg still takes its one-way delay before
            # the sender learns of the loss; traced as a waited leg.
            if self.inner.tracer is not None:
                self.inner._trace_hop(
                    message, "request", delay, use_current=True
                )
            kernel.post(
                delay,
                lambda: on_error(
                    DeliveryError(DeliveryError.CRASHED, message.destination)
                ),
            )
            return
        if (
            plan.drop_probability
            and self._rng.random() < plan.drop_probability
        ):
            counters.fault_drops += 1
            self.inner.meter.record(message)
            delay = self.inner._hop_delay(message)
            if self.inner.tracer is not None:
                self.inner._trace_hop(
                    message, "request", delay, use_current=True
                )
            kernel.post(
                delay,
                lambda: on_error(
                    DeliveryError(DeliveryError.DROPPED, message.destination)
                ),
            )
            return
        extra_ms = 0.0
        if plan.max_latency_ms:
            extra_ms = self._draw_latency_ms()
            self.latency_ms += extra_ms
            counters.fault_latency_ms += extra_ms
        duplicated = bool(
            plan.duplicate_probability
            and self._rng.random() < plan.duplicate_probability
        )

        def deliver_result(response: Optional[Message]) -> None:
            if (
                response is not None
                and plan.drop_probability
                and self._rng.random() < plan.drop_probability
            ):
                counters.fault_drops += 1
                on_error(
                    DeliveryError(DeliveryError.DROPPED, message.destination)
                )
                return
            on_result(response)

        self.inner.send_async(
            message, deliver_result, on_error, extra_delay_ms=extra_ms
        )
        if duplicated:
            counters.fault_duplicates += 1
            # The duplicate delivery is not on any lookup's critical path
            # (its response is discarded), so its legs are recorded
            # unattributed -- the latency-sum trace invariant holds.
            tracer = self.inner.tracer
            if tracer is not None:
                with tracer.activated(None):
                    self.inner.send_async(
                        message,
                        lambda response: None,
                        lambda error: None,
                        extra_delay_ms=extra_ms,
                    )
            else:
                self.inner.send_async(
                    message,
                    lambda response: None,
                    lambda error: None,
                    extra_delay_ms=extra_ms,
                )

    def _advance_schedule(self) -> None:
        """Fire crash/restart/recovery events due at the current send."""
        while self._pending_recoveries and (
            self._pending_recoveries[0][0] <= self.sends
        ):
            _, name = self._pending_recoveries.pop(0)
            self.recover_node(name)
        while self._pending_restart_recoveries and (
            self._pending_restart_recoveries[0][0] <= self.sends
        ):
            _, name, power_loss = self._pending_restart_recoveries.pop(0)
            self.recover_node(name)
            if self.on_restart is not None:
                self.on_restart(name, power_loss)
        while self._pending_crashes and (
            self._pending_crashes[0].at_send <= self.sends
        ):
            event = self._pending_crashes.pop(0)
            victim = self._pick_victim(event.victim)
            if victim is None:
                continue
            self.fail_node(victim)
            recover_at = self.sends + event.downtime_sends
            self._pending_recoveries.append((recover_at, victim))
            self._pending_recoveries.sort()
        while self._pending_restarts and (
            self._pending_restarts[0].at_send <= self.sends
        ):
            event = self._pending_restarts.pop(0)
            victim = self._pick_victim(event.victim)
            if victim is None:
                continue
            self.fail_node(victim)
            counters.fault_restarts += 1
            if event.power_loss:
                counters.fault_power_losses += 1
            if self.on_kill is not None:
                self.on_kill(victim, event.power_loss)
            recover_at = self.sends + event.downtime_sends
            self._pending_restart_recoveries.append(
                (recover_at, victim, event.power_loss)
            )
            self._pending_restart_recoveries.sort()

    def _pick_victim(self, victim: Optional[str]) -> Optional[str]:
        """Resolve a scheduled event's victim (random when unset)."""
        if victim is not None:
            return victim
        candidates = [
            name
            for name in self._crashable(self.inner.endpoint_names)
            if name not in self._crashed
        ]
        if not candidates:
            return None
        return candidates[self._rng.randrange(len(candidates))]


#: Adversarial (Byzantine) extensions live in :mod:`repro.net.adversary`
#: and are re-exported here lazily (PEP 562) -- a plain ``from
#: repro.net.faults import AdversaryPlan`` works without creating an
#: import cycle (the adversary module subclasses FaultyTransport).
_ADVERSARY_EXPORTS = ("AdversaryPlan", "AdversarialTransport", "NO_ADVERSARY")


def __getattr__(name: str):
    if name in _ADVERSARY_EXPORTS:
        from repro.net import adversary

        return getattr(adversary, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
