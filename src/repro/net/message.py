"""Message model with a deterministic byte-size accounting.

Figure 12 of the paper reports "average network traffic (bytes) generated
per query", with traffic "mainly driven by responses, which usually
outnumber a single query", and separates *cache traffic* (bytes spent
creating shortcut entries after successful lookups) from *normal traffic*.

To reproduce those measurements we need a concrete, stable size model.  A
message's payload is one or more query strings (requests carry one query;
responses carry the result set; cache-insert messages carry the shortcut
mapping).  The size of a message is::

    HEADER_BYTES + sum(len(utf8(query)) + PER_ENTRY_BYTES for each entry)

with a small fixed header and per-entry framing overhead.  The absolute
constants are arbitrary (the paper does not publish its own), but every
scheme/policy is measured under the same model, so the *relative* results
-- which Figure 12 is about -- are preserved.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

#: Fixed per-message overhead (addressing, type, framing).
HEADER_BYTES = 16
#: Per-payload-entry framing overhead (length prefix, separator).
PER_ENTRY_BYTES = 4


class MessageKind(enum.Enum):
    """Application-level message types exchanged with the index service."""

    QUERY_REQUEST = "query_request"
    QUERY_RESPONSE = "query_response"
    INDEX_INSERT = "index_insert"
    INDEX_REMOVE = "index_remove"
    CACHE_INSERT = "cache_insert"
    FILE_REQUEST = "file_request"
    FILE_RESPONSE = "file_response"
    CONTROL = "control"


class TrafficCategory(enum.Enum):
    """Accounting buckets used by Figure 12."""

    NORMAL = "normal"
    CACHE = "cache"
    MAINTENANCE = "maintenance"

    @staticmethod
    def for_kind(kind: MessageKind) -> "TrafficCategory":
        if kind is MessageKind.CACHE_INSERT:
            return TrafficCategory.CACHE
        if kind in (MessageKind.INDEX_INSERT, MessageKind.INDEX_REMOVE,
                    MessageKind.CONTROL):
            return TrafficCategory.MAINTENANCE
        return TrafficCategory.NORMAL


@dataclass(frozen=True)
class Message:
    """An application message between a user (or node) and a node.

    ``source`` and ``destination`` are opaque endpoint names registered
    with the transport; ``payload`` is a tuple of query strings (or other
    textual entries); ``size_bytes`` is derived from the payload unless a
    caller supplies an explicit size (e.g. file transfers, whose size is
    the article size, not the descriptor length).
    """

    kind: MessageKind
    source: str
    destination: str
    payload: tuple[str, ...] = ()
    explicit_size: Optional[int] = None
    #: Overlay legs this message traverses (>= 1).  The synchronous
    #: transport ignores it; the event kernel multiplies the sampled
    #: per-hop latency by it, so a request routed through a Chord/
    #: Kademlia overlay costs its real routing delay while the direct
    #: response costs one leg.  It does not contribute to ``size_bytes``
    #: (the byte model of Figure 12 is per application message).
    route_hops: int = 1
    category: TrafficCategory = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.category is None:
            object.__setattr__(
                self, "category", TrafficCategory.for_kind(self.kind)
            )

    @property
    def size_bytes(self) -> int:
        """Deterministic wire-size *estimate* of this message.

        This is the payload-derived model Figure 12's traffic accounting
        uses.  The real wire codec (:mod:`repro.rpc.codec`) produces a
        *measured* size that exceeds this estimate by exactly the
        endpoint-name bytes plus a fixed framing delta (see
        ``repro.rpc.codec.estimate_delta``); a tier-1 test pins the
        relation, so the estimate stays an honest lower bound.

        The value is computed once per message: traffic metering reads
        it several times (bytes by category, bytes in, bytes out), and
        the payload of a frozen message cannot change.
        """
        cached = self.__dict__.get("_size_bytes")
        if cached is not None:
            return cached
        if self.explicit_size is not None:
            size = self.explicit_size
        else:
            size = HEADER_BYTES + sum(
                len(entry.encode("utf-8")) + PER_ENTRY_BYTES
                for entry in self.payload
            )
        object.__setattr__(self, "_size_bytes", size)
        return size

    def reply(
        self,
        kind: MessageKind,
        payload: tuple[str, ...] = (),
        explicit_size: Optional[int] = None,
    ) -> "Message":
        """Build a response message back to this message's source."""
        return Message(
            kind=kind,
            source=self.destination,
            destination=self.source,
            payload=payload,
            explicit_size=explicit_size,
        )
