"""In-process transport connecting endpoints by name.

The transport plays the role of the network between users and peer nodes:
endpoints (nodes, user agents) register under a unique name; messages are
delivered synchronously to the destination's handler, and every delivered
message is metered by the attached :class:`repro.net.traffic.TrafficMeter`.

The synchronous delivery model matches the paper's simulation, which is a
sequential feed of 50,000 queries -- there is no concurrency inside a
single lookup, only iteration.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.message import Message
from repro.net.traffic import TrafficMeter


class TransportError(RuntimeError):
    """Raised for unknown destinations or duplicate registrations."""


Endpoint = Callable[[Message], Optional[Message]]


class SimulatedTransport:
    """Routes messages between named endpoints and meters them.

    An endpoint is any callable taking a :class:`Message` and returning an
    optional response message (itself metered and returned to the caller).
    """

    def __init__(self, meter: Optional[TrafficMeter] = None) -> None:
        self.meter = meter if meter is not None else TrafficMeter()
        self._endpoints: dict[str, Endpoint] = {}

    def register(self, name: str, endpoint: Endpoint) -> None:
        """Attach an endpoint under a unique name."""
        if name in self._endpoints:
            raise TransportError(f"endpoint already registered: {name!r}")
        self._endpoints[name] = endpoint

    def unregister(self, name: str) -> None:
        """Detach an endpoint (e.g. a departed node)."""
        if name not in self._endpoints:
            raise TransportError(f"no such endpoint: {name!r}")
        del self._endpoints[name]

    def is_registered(self, name: str) -> bool:
        """True when an endpoint with this name exists."""
        return name in self._endpoints

    @property
    def endpoint_names(self) -> list[str]:
        return list(self._endpoints)

    def send(self, message: Message) -> Optional[Message]:
        """Deliver a message; meter it and any synchronous response.

        Returns the destination's response message, if it produced one.
        """
        handler = self._endpoints.get(message.destination)
        if handler is None:
            raise TransportError(f"no such endpoint: {message.destination!r}")
        self.meter.record(message)
        response = handler(message)
        if response is not None:
            self.meter.record(response)
        return response
