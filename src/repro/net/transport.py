"""In-process transport connecting endpoints by name.

The transport plays the role of the network between users and peer nodes:
endpoints (nodes, user agents) register under a unique name; messages are
delivered synchronously to the destination's handler, and every delivered
message is metered by the attached :class:`repro.net.traffic.TrafficMeter`.

The synchronous delivery model (:meth:`SimulatedTransport.send`) matches
the paper's simulation, which is a sequential feed of 50,000 queries --
there is no concurrency inside a single lookup, only iteration.

For the concurrent experiments the paper never ran, the transport also
supports *scheduled* delivery (:meth:`SimulatedTransport.send_async`):
bound to an event kernel and a latency model (:meth:`bind_clock`), a send
books the handler invocation at ``now + latency`` on the virtual clock
and the response arrival one response-leg later, so many lookups can be
in flight at once and hop latency -- not call order -- decides who gets
answered first.  Byte metering is identical in both modes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.message import Message
from repro.net.traffic import TrafficMeter

if TYPE_CHECKING:  # import cycle guard: sim.kernel is typing-only here
    from repro.net.latency import LatencyModel
    from repro.obs.tracer import SpanRef, Tracer
    from repro.sim.kernel import EventKernel


class TransportError(RuntimeError):
    """Raised on transport *misuse*: duplicate registrations and sends to
    destinations that never existed (a programming error in the caller)."""


class DeliveryError(TransportError):
    """A message could not be delivered for a *runtime* reason.

    Unlike :class:`TransportError` (misuse, not recoverable), a delivery
    error models a network condition a robust client is expected to
    handle: the destination departed, crashed, or the message was lost.
    ``reason`` is one of the ``*_REASON`` constants below and tells the
    retry logic whether trying another replica can help (a crashed node
    stays crashed) or whether retrying the same node is enough (a drop
    is transient).
    """

    #: The message was dropped on the wire (transient; retry same node).
    DROPPED = "dropped"
    #: The destination is crashed (persistent; fail over to a replica).
    CRASHED = "crashed"
    #: The destination unregistered after having existed (node departed).
    UNREGISTERED = "unregistered"
    #: No response arrived within the request deadline (real transports
    #: only: the simulated transport's failure detector is instantaneous,
    #: a socket's is a timer).  Transient, exactly like ``dropped`` -- a
    #: retransmission to the same node is expected to get through -- so
    #: the engine's retry logic and the service's failover policy treat
    #: the two reasons identically.
    TIMEOUT = "timeout"
    #: A response arrived but failed signature verification (the sender
    #: could not prove the claimed identity -- see :mod:`repro.sec`).  The
    #: answer is discarded as if the node were unreachable, and because a
    #: forger will keep forging, failover to another replica is the only
    #: productive retry.
    VERIFY_FAILED = "verify_failed"

    def __init__(self, reason: str, destination: str) -> None:
        super().__init__(f"delivery failed ({reason}): {destination!r}")
        self.reason = reason
        self.destination = destination

    @property
    def retry_elsewhere(self) -> bool:
        """Whether another replica could answer where this node did not."""
        return self.reason in (self.CRASHED, self.UNREGISTERED, self.VERIFY_FAILED)


Endpoint = Callable[[Message], Optional[Message]]
#: Continuation receiving the (optional) response of an async exchange.
ResponseCallback = Callable[[Optional[Message]], None]
#: Continuation receiving the DeliveryError of a failed async exchange.
ErrorCallback = Callable[["DeliveryError"], None]


class SimulatedTransport:
    """Routes messages between named endpoints and meters them.

    An endpoint is any callable taking a :class:`Message` and returning an
    optional response message (itself metered and returned to the caller).
    """

    def __init__(self, meter: Optional[TrafficMeter] = None) -> None:
        self.meter = meter if meter is not None else TrafficMeter()
        self._endpoints: dict[str, Endpoint] = {}
        # Names that existed at some point: distinguishes "never existed"
        # (programming error) from "departed" (runtime condition).
        self._ever_registered: set[str] = set()
        # Virtual-time mode (bind_clock): unset means synchronous-only.
        self.kernel: Optional["EventKernel"] = None
        self.latency: Optional["LatencyModel"] = None
        # Observability (bind_tracer): unset means zero-overhead untraced.
        self.tracer: Optional["Tracer"] = None

    def register(self, name: str, endpoint: Endpoint) -> None:
        """Attach an endpoint under a unique name."""
        if name in self._endpoints:
            raise TransportError(f"endpoint already registered: {name!r}")
        self._endpoints[name] = endpoint
        self._ever_registered.add(name)

    def unregister(self, name: str) -> None:
        """Detach an endpoint (e.g. a departed node)."""
        if name not in self._endpoints:
            raise TransportError(f"no such endpoint: {name!r}")
        del self._endpoints[name]

    def is_registered(self, name: str) -> bool:
        """True when an endpoint with this name exists."""
        return name in self._endpoints

    @property
    def endpoint_names(self) -> list[str]:
        return list(self._endpoints)

    def send(self, message: Message) -> Optional[Message]:
        """Deliver a message; meter it and any synchronous response.

        Returns the destination's response message, if it produced one.
        Sending to a name that *never* existed raises
        :class:`TransportError` (a programming error); sending to a name
        that existed but has since unregistered raises the typed
        :class:`DeliveryError` (a runtime condition -- the node departed
        between resolution and delivery).  A message lost in flight still
        costs its request bytes, so failed sends are metered.
        """
        handler = self._endpoints.get(message.destination)
        if handler is None:
            if message.destination in self._ever_registered:
                self.meter.record(message)
                raise DeliveryError(
                    DeliveryError.UNREGISTERED, message.destination
                )
            raise TransportError(f"no such endpoint: {message.destination!r}")
        self.meter.record(message)
        if self.tracer is not None:
            self._trace_hop(message, "request", 0.0, use_current=True)
        response = handler(message)
        if response is not None:
            self.meter.record(response)
            if self.tracer is not None:
                self._trace_hop(response, "response", 0.0, use_current=True)
        return response

    # -- virtual-time delivery ---------------------------------------------

    def bind_clock(
        self, kernel: "EventKernel", latency: "LatencyModel"
    ) -> None:
        """Attach the event kernel and latency model for scheduled sends."""
        self.kernel = kernel
        self.latency = latency

    # -- observability ------------------------------------------------------

    def bind_tracer(self, tracer: Optional["Tracer"]) -> None:
        """Attach (or detach, with ``None``) the lookup tracer.

        Tracing is pure observation: it reads message facts the transport
        already computed, so bound or not, delivery behaviour, metering,
        and random-draw sequences are identical.
        """
        self.tracer = tracer

    def _trace_hop(
        self,
        message: Message,
        leg: str,
        latency_ms: float,
        use_current: bool = False,
        ref: Optional["SpanRef"] = None,
    ) -> None:
        """Record one route-hop event for a metered message."""
        assert self.tracer is not None
        self.tracer.route_hop(
            src=message.source,
            dst=message.destination,
            message=message.kind.value,
            legs=max(1, message.route_hops),
            latency_ms=latency_ms,
            leg=leg,
            ref=ref,
            use_current=use_current,
        )

    def _hop_delay(self, message: Message) -> float:
        """One-way delay of a message: per-hop latency times route legs.

        Every leg is charged the sampled (source, destination) latency --
        the intermediate overlay relays are anonymous, so the endpoint
        pair stands in for each of them.  A direct message has
        ``route_hops == 1`` and costs exactly one sample.
        """
        assert self.latency is not None
        sample = self.latency.sample(message.source, message.destination)
        return sample * max(1, message.route_hops)

    def send_async(
        self,
        message: Message,
        on_result: ResponseCallback,
        on_error: ErrorCallback,
        extra_delay_ms: float = 0.0,
    ) -> None:
        """Deliver a message through the virtual clock.

        The handler runs at ``now + hop_delay + extra_delay_ms``; its
        response (if any) arrives back at the sender one response leg
        later, passed to ``on_result``.  Handlers and callbacks never run
        inside this call -- everything goes through the kernel heap, so
        concurrent exchanges interleave strictly by virtual time.

        Runtime failures are *reported, not raised*: ``on_error``
        receives the :class:`DeliveryError` after the request's one-way
        delay (an idealized failure detector -- the sender learns of the
        loss when a timeout of one leg expires).  Misuse -- sending to a
        name that never existed, or sending without :meth:`bind_clock` --
        still raises :class:`TransportError` synchronously.
        """
        if self.kernel is None or self.latency is None:
            raise TransportError("send_async requires bind_clock() first")
        if (
            message.destination not in self._endpoints
            and message.destination not in self._ever_registered
        ):
            raise TransportError(f"no such endpoint: {message.destination!r}")
        # The sender spends the request bytes now, delivered or not.
        self.meter.record(message)
        delay = self._hop_delay(message) + extra_delay_ms
        # Attribution for the response leg is captured now: by the time
        # the arrival event fires, other lookups' sends will have moved
        # the tracer's current-span pointer.
        span = self.tracer.current if self.tracer is not None else None
        if self.tracer is not None:
            self._trace_hop(message, "request", delay, ref=span)
        # post, not schedule: nothing cancels an in-flight message, so
        # the cancellable handle would be a dead allocation per send.
        # Both book from the same seq counter, so ordering is unchanged.
        self.kernel.post(
            delay,
            lambda: self._deliver_scheduled(message, on_result, on_error, span),
        )

    def _deliver_scheduled(
        self,
        message: Message,
        on_result: ResponseCallback,
        on_error: ErrorCallback,
        span: Optional["SpanRef"] = None,
    ) -> None:
        """Arrival event: run the handler, schedule the response leg.

        The destination is re-resolved at arrival time -- a node that
        departed while the message was in flight yields the same
        ``unregistered`` delivery error the synchronous path produces.
        """
        assert self.kernel is not None
        handler = self._endpoints.get(message.destination)
        if handler is None:
            on_error(DeliveryError(DeliveryError.UNREGISTERED, message.destination))
            return
        response = handler(message)
        if response is None:
            on_result(None)
            return
        self.meter.record(response)
        response_delay = self._hop_delay(response)
        if self.tracer is not None:
            self._trace_hop(response, "response", response_delay, ref=span)
        self.kernel.post(response_delay, lambda: on_result(response))
