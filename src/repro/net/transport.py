"""In-process transport connecting endpoints by name.

The transport plays the role of the network between users and peer nodes:
endpoints (nodes, user agents) register under a unique name; messages are
delivered synchronously to the destination's handler, and every delivered
message is metered by the attached :class:`repro.net.traffic.TrafficMeter`.

The synchronous delivery model matches the paper's simulation, which is a
sequential feed of 50,000 queries -- there is no concurrency inside a
single lookup, only iteration.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.message import Message
from repro.net.traffic import TrafficMeter


class TransportError(RuntimeError):
    """Raised on transport *misuse*: duplicate registrations and sends to
    destinations that never existed (a programming error in the caller)."""


class DeliveryError(TransportError):
    """A message could not be delivered for a *runtime* reason.

    Unlike :class:`TransportError` (misuse, not recoverable), a delivery
    error models a network condition a robust client is expected to
    handle: the destination departed, crashed, or the message was lost.
    ``reason`` is one of the ``*_REASON`` constants below and tells the
    retry logic whether trying another replica can help (a crashed node
    stays crashed) or whether retrying the same node is enough (a drop
    is transient).
    """

    #: The message was dropped on the wire (transient; retry same node).
    DROPPED = "dropped"
    #: The destination is crashed (persistent; fail over to a replica).
    CRASHED = "crashed"
    #: The destination unregistered after having existed (node departed).
    UNREGISTERED = "unregistered"

    def __init__(self, reason: str, destination: str) -> None:
        super().__init__(f"delivery failed ({reason}): {destination!r}")
        self.reason = reason
        self.destination = destination

    @property
    def retry_elsewhere(self) -> bool:
        """Whether another replica could answer where this node did not."""
        return self.reason in (self.CRASHED, self.UNREGISTERED)


Endpoint = Callable[[Message], Optional[Message]]


class SimulatedTransport:
    """Routes messages between named endpoints and meters them.

    An endpoint is any callable taking a :class:`Message` and returning an
    optional response message (itself metered and returned to the caller).
    """

    def __init__(self, meter: Optional[TrafficMeter] = None) -> None:
        self.meter = meter if meter is not None else TrafficMeter()
        self._endpoints: dict[str, Endpoint] = {}
        # Names that existed at some point: distinguishes "never existed"
        # (programming error) from "departed" (runtime condition).
        self._ever_registered: set[str] = set()

    def register(self, name: str, endpoint: Endpoint) -> None:
        """Attach an endpoint under a unique name."""
        if name in self._endpoints:
            raise TransportError(f"endpoint already registered: {name!r}")
        self._endpoints[name] = endpoint
        self._ever_registered.add(name)

    def unregister(self, name: str) -> None:
        """Detach an endpoint (e.g. a departed node)."""
        if name not in self._endpoints:
            raise TransportError(f"no such endpoint: {name!r}")
        del self._endpoints[name]

    def is_registered(self, name: str) -> bool:
        """True when an endpoint with this name exists."""
        return name in self._endpoints

    @property
    def endpoint_names(self) -> list[str]:
        return list(self._endpoints)

    def send(self, message: Message) -> Optional[Message]:
        """Deliver a message; meter it and any synchronous response.

        Returns the destination's response message, if it produced one.
        Sending to a name that *never* existed raises
        :class:`TransportError` (a programming error); sending to a name
        that existed but has since unregistered raises the typed
        :class:`DeliveryError` (a runtime condition -- the node departed
        between resolution and delivery).  A message lost in flight still
        costs its request bytes, so failed sends are metered.
        """
        handler = self._endpoints.get(message.destination)
        if handler is None:
            if message.destination in self._ever_registered:
                self.meter.record(message)
                raise DeliveryError(
                    DeliveryError.UNREGISTERED, message.destination
                )
            raise TransportError(f"no such endpoint: {message.destination!r}")
        self.meter.record(message)
        response = handler(message)
        if response is not None:
            self.meter.record(response)
        return response
