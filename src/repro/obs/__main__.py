"""Trace-analysis command line: ``python -m repro.obs <command>``.

Currently one subcommand::

    python -m repro.obs summarize trace.jsonl

reconstructs the per-lookup anatomy tables (chain-length distribution,
hops per chain step, latency breakdown by leg) from a JSONL trace
exported with ``python -m repro.sim ... --trace-out trace.jsonl``.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.reader import TraceReadError
from repro.obs.summarize import summarize_file


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze lookup traces exported by repro.sim.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    summarize = commands.add_parser(
        "summarize",
        help="print per-lookup anatomy tables from a JSONL trace",
    )
    summarize.add_argument("trace", help="path to the JSONL trace file")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "summarize":
        try:
            print(summarize_file(args.trace))
        except FileNotFoundError:
            print(f"error: no such trace file: {args.trace}", file=sys.stderr)
            return 2
        except TraceReadError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Downstream closed early (e.g. `... | head`): exit quietly.
        sys.stderr.close()
        raise SystemExit(0) from None
