"""Structured lookup tracing: span-level observability for the stack.

The paper's evaluation (Sections V-VI, Figs 13-15) reasons about
*per-lookup* behaviour -- index-chain length, hops per step, cache
shortcuts taken, nodes visited -- but aggregate counters cannot
attribute latency or traffic to individual queries once the virtual-time
kernel interleaves concurrent lookups.  This package supplies the
missing layer:

- :class:`repro.obs.tracer.Tracer` records typed events
  (``lookup_start``, ``index_step``, ``dht_route_hop``, ``retry``,
  ``failover``, ``cache_insert``, ``lookup_end``, ...) into per-lookup
  spans, timestamped on the same virtual clock the event kernel runs;
- :mod:`repro.obs.reader` reloads an exported JSONL trace for analysis;
- :mod:`repro.obs.summarize` reconstructs Fig-13/15-style per-lookup
  tables (chain-length distribution, hops per chain step, latency
  breakdown by leg), also available as
  ``python -m repro.obs summarize trace.jsonl``.

Tracing is strictly read-only over the simulation: it draws no random
numbers and touches no metric, so a traced run produces bit-identical
aggregates to an untraced one, and a same-seed traced run produces a
byte-identical JSONL file (both pinned by tests).  Every instrumentation
site is guarded by an ``is None`` check on an optional tracer reference,
so the layer costs nothing when off.
"""

from repro.obs.reader import LookupTrace, TraceEvent, TraceFile, load_trace
from repro.obs.tracer import SpanRef, Tracer

__all__ = [
    "LookupTrace",
    "SpanRef",
    "TraceEvent",
    "TraceFile",
    "Tracer",
    "load_trace",
]
