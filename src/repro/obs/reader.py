"""Reload an exported JSONL trace for analysis.

The reader is the inverse of :meth:`repro.obs.tracer.Tracer.write_jsonl`:
it parses one JSON object per line back into :class:`TraceEvent` records
and groups them into :class:`LookupTrace` spans, preserving event order.
Analysis code (and the ``python -m repro.obs summarize`` command) works
on these structures, never on raw lines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

#: Keys every event carries, in serialization order; everything else is
#: kind-specific payload exposed through ``TraceEvent.data``.
_ENVELOPE_KEYS = ("seq", "t", "kind", "lookup", "exchange")


class TraceReadError(ValueError):
    """Raised on malformed trace files (bad JSON, missing envelope)."""


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: the envelope plus its kind-specific payload."""

    seq: int
    t: float
    kind: str
    lookup: Optional[int]
    exchange: Optional[int]
    data: dict

    @classmethod
    def from_line(cls, line: str) -> "TraceEvent":
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceReadError(f"malformed trace line: {error}") from error
        if not isinstance(raw, dict) or any(
            key not in raw for key in _ENVELOPE_KEYS
        ):
            raise TraceReadError(f"trace line missing envelope keys: {line!r}")
        payload = {
            key: value
            for key, value in raw.items()
            if key not in _ENVELOPE_KEYS
        }
        return cls(
            seq=raw["seq"],
            t=raw["t"],
            kind=raw["kind"],
            lookup=raw["lookup"],
            exchange=raw["exchange"],
            data=payload,
        )


@dataclass
class LookupTrace:
    """All events of one lookup span, in recording order."""

    lookup_id: int
    events: list[TraceEvent] = field(default_factory=list)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """The span's events of one kind, in order."""
        return [event for event in self.events if event.kind == kind]

    @property
    def start(self) -> Optional[TraceEvent]:
        head = self.of_kind("lookup_start")
        return head[0] if head else None

    @property
    def end(self) -> Optional[TraceEvent]:
        tail = self.of_kind("lookup_end")
        return tail[-1] if tail else None

    @property
    def chain_length(self) -> int:
        """Index interactions the lookup performed (Fig 13/15 anatomy)."""
        return len(self.of_kind("index_step"))

    @property
    def hops(self) -> int:
        """Route-hop events attributed to the span."""
        return len(self.of_kind("dht_route_hop"))

    @property
    def elapsed_ms(self) -> float:
        end = self.end
        return float(end.data["elapsed_ms"]) if end else 0.0

    @property
    def found(self) -> bool:
        end = self.end
        return bool(end.data.get("found")) if end else False

    def visited_nodes(self) -> set[int]:
        """Index/storage nodes that served this lookup (Fig 15 view)."""
        return {
            event.data["node"]
            for event in self.events
            if event.kind in ("index_step", "fetch_step")
        }

    def waited_latency_ms(self) -> float:
        """Virtual time the lookup spent waiting, reconstructed leg by leg.

        Sums every route leg on the lookup's critical path -- request and
        response legs of queries, fetches, failed deliveries, and replica
        failovers -- plus retry backoff waits.  Cache-insert legs are
        excluded: shortcut creation is fire-and-forget, so the lookup
        never waits for it.  Equals ``lookup_end.elapsed_ms`` (a pinned
        trace invariant).
        """
        total = 0.0
        for event in self.events:
            if event.kind == "dht_route_hop":
                if event.data["message"] != "cache_insert":
                    total += event.data["latency_ms"]
            elif event.kind == "backoff":
                total += event.data["wait_ms"]
        return total


@dataclass
class TraceFile:
    """A fully parsed trace: header facts, raw events, grouped spans."""

    header: dict
    events: list[TraceEvent]
    lookups: list[LookupTrace]

    @property
    def unattributed(self) -> list[TraceEvent]:
        """Events belonging to no lookup (e.g. duplicate deliveries)."""
        return [
            event
            for event in self.events
            if event.lookup is None and event.kind != "trace_header"
        ]


def iter_events(path: str) -> Iterator[TraceEvent]:
    """Stream a trace file's events without grouping them."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield TraceEvent.from_line(line)


def group_lookups(events: Iterable[TraceEvent]) -> list[LookupTrace]:
    """Group events into per-lookup spans, ordered by first appearance."""
    spans: dict[int, LookupTrace] = {}
    for event in events:
        if event.lookup is None:
            continue
        span = spans.get(event.lookup)
        if span is None:
            span = spans[event.lookup] = LookupTrace(event.lookup)
        span.events.append(event)
    return list(spans.values())


def load_trace(path: str) -> TraceFile:
    """Parse a JSONL trace file into header, events, and lookup spans."""
    events = list(iter_events(path))
    header: dict = {}
    if events and events[0].kind == "trace_header":
        header = dict(events[0].data)
    return TraceFile(
        header=header, events=events, lookups=group_lookups(events)
    )
