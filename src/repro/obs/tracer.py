"""The tracer: typed per-lookup spans on the virtual clock.

One :class:`Tracer` instance observes one experiment (or one hand-built
stack in a test).  The instrumented layers call its typed recording
methods; every call appends one event -- a plain dict with a fixed key
order -- to an in-memory list that :meth:`Tracer.write_jsonl` exports as
one JSON object per line.

Design constraints, all pinned by tests:

- **Zero overhead when off.**  The tracer is threaded through the stack
  as an optional reference defaulting to ``None``; every call site is
  guarded by ``if tracer is not None``.  No tracer object exists in an
  untraced run.
- **Zero observer effect when on.**  Recording only *reads* simulation
  state: no random draws, no perf-counter increments, no messages.  A
  traced run's aggregate metrics are bit-identical to an untraced run's.
- **Deterministic bytes.**  Events are appended in program order, which
  the seeded simulation makes deterministic; timestamps come from the
  deterministic virtual clock; serialization is canonical (fixed key
  order, compact separators).  Same seed, same bytes.

Span structure: each lookup is a span (``lookup`` id) opened by
``lookup_start`` and closed by ``lookup_end``; each message exchange
within it -- including retransmissions -- is a child span (``exchange``
id, unique per lookup) linked to its parent by the ``lookup`` field.
Events carry both ids, so a reader can reconstruct the nesting without
separate exchange start/end markers.

Attribution across layers uses :attr:`Tracer.current`, the span
reference of the lookup being advanced *right now*: the engine's state
machine sets it before every externally visible action, so the transport
-- which knows nothing about lookups -- can attribute its
``dht_route_hop`` events to the correct span even while many lookups are
in flight.  Continuations that fire later on the kernel (response legs,
replica failover) capture the reference when created and re-activate it
via :meth:`Tracer.activated`.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Optional

if TYPE_CHECKING:
    from repro.sim.kernel import EventKernel

#: Reference to the span an event belongs to: ``(lookup id, exchange id)``
#: where the exchange id is ``None`` for lookup-level events.
SpanRef = tuple[int, Optional[int]]

#: Trace format version, stamped into the header event.
TRACE_VERSION = 1


class _LiveLookup:
    """Mutable per-lookup bookkeeping while the span is open."""

    __slots__ = ("started_at", "hop_events", "exchanges")

    def __init__(self, started_at: float) -> None:
        self.started_at = started_at
        #: ``dht_route_hop`` events attributed to this lookup so far.
        self.hop_events = 0
        #: Exchange (child-span) ids handed out so far.
        self.exchanges = 0


class Tracer:
    """Records typed, timestamped events into per-lookup spans."""

    def __init__(self, meta: Optional[Mapping[str, object]] = None) -> None:
        """``meta`` (experiment configuration facts: substrate, scheme,
        seeds, ...) is stamped into the leading ``trace_header`` event."""
        self._clock: Callable[[], float] = lambda: 0.0
        self.events: list[dict] = []
        self._seq = 0
        self._next_lookup = 0
        self._live: dict[int, _LiveLookup] = {}
        #: Span of the lookup currently being advanced (see module doc).
        self.current: Optional[SpanRef] = None
        header = {"version": TRACE_VERSION}
        if meta:
            header.update(meta)
        self._emit("trace_header", None, None, header)

    # -- clock --------------------------------------------------------------

    def bind_clock(self, kernel: "EventKernel") -> None:
        """Timestamp subsequent events with the kernel's virtual time."""
        self._clock = lambda: kernel.now

    @property
    def now(self) -> float:
        """Current timestamp source (virtual ms; 0.0 when clockless)."""
        return self._clock()

    # -- span plumbing ------------------------------------------------------

    def set_context(self, lookup: int, exchange: Optional[int]) -> None:
        """Mark the span the next cross-layer events belong to."""
        self.current = (lookup, exchange)

    @contextmanager
    def activated(self, ref: Optional[SpanRef]) -> Iterator[None]:
        """Temporarily re-activate a captured span reference.

        Used by continuations firing on the kernel (failover attempts,
        duplicate deliveries with ``ref=None``) so that transport-level
        events they trigger are attributed to the right lookup -- or to
        no lookup at all -- regardless of what ``current`` points at.
        """
        previous = self.current
        self.current = ref
        try:
            yield
        finally:
            self.current = previous

    def open_exchange(self, lookup: int) -> int:
        """Allocate the next exchange (child-span) id of a lookup."""
        live = self._live[lookup]
        live.exchanges += 1
        return live.exchanges

    # -- recording ----------------------------------------------------------

    def _emit(
        self,
        kind: str,
        lookup: Optional[int],
        exchange: Optional[int],
        fields: Mapping[str, object],
    ) -> None:
        event: dict = {
            "seq": self._seq,
            "t": self._clock() if kind != "trace_header" else 0.0,
            "kind": kind,
            "lookup": lookup,
            "exchange": exchange,
        }
        event.update(fields)
        self._seq += 1
        self.events.append(event)

    def begin_lookup(self, query_key: str, user: str) -> int:
        """Open a lookup span; returns its id (also left in ``current``)."""
        lookup = self._next_lookup
        self._next_lookup += 1
        self._live[lookup] = _LiveLookup(self._clock())
        self.current = (lookup, None)
        self._emit("lookup_start", lookup, None, {"query": query_key, "user": user})
        return lookup

    def end_lookup(self, lookup: int, **outcome: object) -> None:
        """Close a lookup span with its outcome fields.

        Adds the derived ``hops`` (number of ``dht_route_hop`` events
        attributed to the span) and ``elapsed_ms`` (virtual time since
        ``lookup_start``) fields.
        """
        live = self._live.pop(lookup)
        fields = dict(outcome)
        fields["hops"] = live.hop_events
        fields["elapsed_ms"] = self._clock() - live.started_at
        self._emit("lookup_end", lookup, None, fields)
        if self.current is not None and self.current[0] == lookup:
            self.current = None

    def index_step(
        self,
        lookup: int,
        exchange: Optional[int],
        *,
        node: int,
        query: str,
        cache_hit: bool,
        entries: int,
        shortcuts: int,
        file_found: bool,
    ) -> None:
        """One resolved index interaction: the answer a node returned."""
        self._emit(
            "index_step",
            lookup,
            exchange,
            {
                "node": node,
                "query": query,
                "cache_hit": cache_hit,
                "entries": entries,
                "shortcuts": shortcuts,
                "file_found": file_found,
            },
        )

    def fetch_step(
        self,
        lookup: int,
        exchange: Optional[int],
        *,
        node: int,
        query: str,
        found: bool,
    ) -> None:
        """The storage-level file fetch terminating a chain."""
        self._emit(
            "fetch_step",
            lookup,
            exchange,
            {"node": node, "query": query, "found": found},
        )

    def route_hop(
        self,
        *,
        src: str,
        dst: str,
        message: str,
        legs: int,
        latency_ms: float,
        leg: str,
        ref: Optional[SpanRef] = None,
        use_current: bool = False,
    ) -> None:
        """One transport traversal: a request, response, or error leg.

        ``legs`` is the number of overlay hops charged (requests pay the
        substrate's routing path, responses return direct);
        ``latency_ms`` is the virtual delay charged for the whole leg.
        Attribution comes from ``ref``, or from :attr:`current` when
        ``use_current`` is set (the transport's synchronous send path).
        """
        if use_current:
            ref = self.current
        lookup, exchange = ref if ref is not None else (None, None)
        if lookup is not None and lookup in self._live:
            self._live[lookup].hop_events += 1
        self._emit(
            "dht_route_hop",
            lookup,
            exchange,
            {
                "src": src,
                "dst": dst,
                "message": message,
                "legs": legs,
                "latency_ms": latency_ms,
                "leg": leg,
            },
        )

    def delivery_error(
        self,
        lookup: int,
        exchange: Optional[int],
        *,
        reason: str,
        destination: str,
    ) -> None:
        """A message exchange failed (dropped / crashed / departed)."""
        self._emit(
            "delivery_error",
            lookup,
            exchange,
            {"reason": reason, "destination": destination},
        )

    def retry(
        self,
        lookup: int,
        exchange: Optional[int],
        *,
        attempt: int,
        backoff_units: int,
    ) -> None:
        """The engine re-transmits a failed exchange after backoff."""
        self._emit(
            "retry",
            lookup,
            exchange,
            {"attempt": attempt, "backoff_units": backoff_units},
        )

    def backoff(
        self, lookup: int, exchange: Optional[int], *, wait_ms: float
    ) -> None:
        """A retry backoff period elapsing (``wait_ms`` on the clock)."""
        self._emit("backoff", lookup, exchange, {"wait_ms": wait_ms})

    def failover(
        self,
        *,
        key: str,
        node: object,
        attempt: int,
        level: str,
        ref: Optional[SpanRef] = None,
        use_current: bool = False,
    ) -> None:
        """A request redirected to another replica of ``key``.

        ``level`` distinguishes service-level replica failover from the
        storage layer skipping a dead copy.
        """
        if use_current:
            ref = self.current
        lookup, exchange = ref if ref is not None else (None, None)
        self._emit(
            "failover",
            lookup,
            exchange,
            {"key": key, "node": node, "attempt": attempt, "level": level},
        )

    def node_recovery(
        self,
        *,
        node: int,
        power_loss: bool,
        entries: int,
        cache_entries: int,
        wal_records: int,
        torn_bytes: int,
        replay_ms: float,
    ) -> None:
        """A restarted node replayed its durable state (chaos runs).

        Not attributed to any lookup span -- recovery happens between
        queries, on the maintenance path.  ``replay_ms`` is measured
        wall time (disk replay is real I/O), the one field exempt from
        the same-seed/same-bytes guarantee; every other field here is
        deterministic.
        """
        self._emit(
            "node_recovery",
            None,
            None,
            {
                "node": node,
                "power_loss": power_loss,
                "entries": entries,
                "cache_entries": cache_entries,
                "wal_records": wal_records,
                "torn_bytes": torn_bytes,
                "replay_ms": replay_ms,
            },
        )

    def cache_insert(self, *, node: int, query: str, msd: str) -> None:
        """A shortcut-creation attempt on a traversed node."""
        lookup, exchange = self.current if self.current is not None else (None, None)
        self._emit(
            "cache_insert",
            lookup,
            exchange,
            {"node": node, "query": query, "msd": msd},
        )

    # -- security events (adversarial runs, repro.sec) ----------------------

    def sec_verify_fail(self, *, destination: str, role: str) -> None:
        """A response failed signature verification and was discarded.

        ``role`` names the adversary class that produced the forged
        frame (``poisoner`` / ``liar`` / ``sybil``) in simulation runs,
        or ``unknown`` on a real transport where only the failure is
        observable.
        """
        lookup, exchange = self.current if self.current is not None else (None, None)
        self._emit(
            "sec_verify_fail",
            lookup,
            exchange,
            {"destination": destination, "role": role},
        )

    def poisoned_result(self, *, destination: str, key: str) -> None:
        """A fabricated (unverified) answer was delivered to a lookup."""
        lookup, exchange = self.current if self.current is not None else (None, None)
        self._emit(
            "poisoned_result",
            lookup,
            exchange,
            {"destination": destination, "key": key},
        )

    def trust_update(self, *, peer: str, score: float, cause: str) -> None:
        """The trust ledger re-scored a peer (see repro.sec.trust)."""
        lookup, exchange = self.current if self.current is not None else (None, None)
        self._emit(
            "trust_update",
            lookup,
            exchange,
            {"peer": peer, "score": round(score, 6), "cause": cause},
        )

    # -- export -------------------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        """Canonical one-object-per-line serialization of every event."""
        for event in self.events:
            yield json.dumps(event, separators=(",", ":"))

    def write_jsonl(self, path: str) -> int:
        """Export the trace; returns the number of events written."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.jsonl_lines():
                handle.write(line)
                handle.write("\n")
        return len(self.events)
