"""Per-lookup anatomy tables reconstructed from a trace file.

Turns one exported JSONL trace into the per-lookup view the paper's
Figures 13 and 15 reason about but aggregates cannot show:

- the **index-chain length distribution** (how many index interactions
  each lookup needed, and how cache shortcuts shorten chains);
- **hops and latency per chain step** (what each step of the resolution
  chain costs on the DHT substrate);
- the **latency breakdown by leg** (where a lookup's response time goes:
  request routing, direct responses, retry backoff);
- per-lookup **response-time percentiles**, which must agree with the
  ``ExperimentResult`` percentiles of the run that produced the trace
  (pinned by tests).

Exposed as ``python -m repro.obs summarize trace.jsonl``.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.analysis.stats import percentile
from repro.analysis.tables import format_table
from repro.obs.reader import LookupTrace, TraceFile, load_trace

#: Message kinds whose legs sit on a lookup's critical path.
_WAITED_MESSAGES = ("query_request", "query_response", "file_request",
                    "file_response")


def chain_length_table(lookups: list[LookupTrace]) -> str:
    """Distribution of index-chain lengths across all lookups."""
    by_length: dict[int, list[LookupTrace]] = {}
    for span in lookups:
        by_length.setdefault(span.chain_length, []).append(span)
    total = len(lookups)
    rows = []
    for length in sorted(by_length):
        bucket = by_length[length]
        rows.append([
            length,
            len(bucket),
            f"{100.0 * len(bucket) / total:.1f}%",
            sum(span.hops for span in bucket) / len(bucket),
            sum(span.elapsed_ms for span in bucket) / len(bucket),
            f"{100.0 * sum(span.found for span in bucket) / len(bucket):.1f}%",
        ])
    return format_table(
        ["chain length", "lookups", "share", "hop events", "mean ms", "found"],
        rows,
        title="index-chain length distribution",
    )


def hops_per_step_table(lookups: list[LookupTrace]) -> str:
    """Routing cost of each successive chain step, averaged over lookups."""
    legs_at: dict[int, list[int]] = {}
    latency_at: dict[int, list[float]] = {}
    for span in lookups:
        position = 0
        for event in span.of_kind("dht_route_hop"):
            if event.data["leg"] != "request":
                continue
            if event.data["message"] not in ("query_request", "file_request"):
                continue
            position += 1
            legs_at.setdefault(position, []).append(event.data["legs"])
            latency_at.setdefault(position, []).append(
                event.data["latency_ms"]
            )
    rows = []
    for position in sorted(legs_at):
        legs = legs_at[position]
        latencies = latency_at[position]
        rows.append([
            position,
            len(legs),
            sum(legs) / len(legs),
            sum(latencies) / len(latencies),
        ])
    return format_table(
        ["chain step", "requests", "mean DHT legs", "mean request ms"],
        rows,
        title="hops per chain step",
    )


def latency_breakdown_table(lookups: list[LookupTrace]) -> str:
    """Where lookup response time goes, split by leg type."""
    totals: Counter[str] = Counter()
    counts: Counter[str] = Counter()
    for span in lookups:
        for event in span.events:
            if event.kind == "dht_route_hop":
                message = event.data["message"]
                if message not in _WAITED_MESSAGES:
                    continue
                label = f"{event.data['leg']} legs"
                totals[label] += event.data["latency_ms"]
                counts[label] += 1
            elif event.kind == "backoff":
                totals["retry backoff"] += event.data["wait_ms"]
                counts["retry backoff"] += 1
    grand_total = sum(totals.values())
    rows = []
    for label in sorted(totals, key=lambda name: -totals[name]):
        share = 100.0 * totals[label] / grand_total if grand_total else 0.0
        rows.append([
            label,
            counts[label],
            totals[label],
            totals[label] / counts[label],
            f"{share:.1f}%",
        ])
    return format_table(
        ["leg", "events", "total ms", "mean ms", "share"],
        rows,
        title="latency breakdown by leg",
    )


def response_time_table(lookups: list[LookupTrace]) -> str:
    """Per-lookup outcome and latency summary of the whole trace."""
    elapsed = [span.elapsed_ms for span in lookups]
    found = sum(1 for span in lookups if span.found)
    rows = [
        ["lookups", len(lookups)],
        ["found", f"{found} ({100.0 * found / len(lookups):.1f}%)"],
        ["mean chain length",
         sum(span.chain_length for span in lookups) / len(lookups)],
        ["response time p50", percentile(elapsed, 0.50)],
        ["response time p95", percentile(elapsed, 0.95)],
        ["response time p99", percentile(elapsed, 0.99)],
        ["response time mean", sum(elapsed) / len(elapsed)],
    ]
    return format_table(
        ["per-lookup metric", "value"], rows, title="lookup outcomes"
    )


def summarize_trace(trace: TraceFile) -> str:
    """The full per-lookup anatomy report of one parsed trace."""
    header = trace.header
    label = "/".join(
        str(header[key])
        for key in ("scheme", "cache", "substrate")
        if key in header
    )
    intro = (
        f"trace: {label or 'unlabelled'} -- "
        f"{len(trace.lookups)} lookups, {len(trace.events)} events"
    )
    if not trace.lookups:
        return intro + "\n(no lookup spans in trace)"
    sections = [
        intro,
        response_time_table(trace.lookups),
        chain_length_table(trace.lookups),
        hops_per_step_table(trace.lookups),
        latency_breakdown_table(trace.lookups),
    ]
    return "\n\n".join(sections)


def summarize_file(path: str, out: Optional[list[str]] = None) -> str:
    """Load ``path`` and produce the anatomy report (CLI entry point)."""
    report = summarize_trace(load_trace(path))
    if out is not None:
        out.append(report)
    return report
