"""Discrete-event kernel with a deterministic virtual clock.

The paper's simulation is a synchronous feed: one query is one Python
call stack, and "response time" does not exist ("any optimization of the
underlying P2P network ... will improve the response time ... but these
are completely independent issues").  To measure what the paper punts on
-- per-query latency under concurrent traffic -- the stack needs a
notion of *when* every message arrives, independent of wall-clock time.

:class:`EventKernel` supplies that notion.  It is a classic
discrete-event scheduler:

- events live in a heap keyed by ``(time, seq)`` where ``seq`` is a
  monotonically increasing tie-breaker, so two events scheduled for the
  same virtual instant fire in scheduling order -- the whole simulation
  is a deterministic function of its inputs;
- ``schedule(delay_ms, callback)`` books a callback at ``now +
  delay_ms`` and returns a cancellable handle;
- ``run()`` pops events in order, advancing ``now`` to each event's
  timestamp before invoking it.

There is deliberately **no wall-clock anywhere**: the kernel never calls
``time.time`` or sleeps.  Virtual milliseconds are just an ordering
device, which is exactly what latency measurements need -- hop delays
(from :mod:`repro.net.latency`) order deliveries, overlapping lookups
contend for the same nodes in a reproducible interleaving, and the
response-time percentiles of a run are bit-stable across repetitions.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class KernelError(RuntimeError):
    """Raised on kernel misuse (negative delays, re-running, ...)."""


class ScheduledEvent:
    """Handle to one booked callback; ``cancel()`` unbooks it.

    Cancellation is lazy: the entry stays in the heap and is skipped
    when popped, which keeps ``cancel`` O(1).
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Unbook the event; a no-op if it already fired."""
        self.cancelled = True
        self.callback = None  # release references early

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventKernel:
    """Deterministic virtual-time event loop.

    ``now`` is in virtual milliseconds and starts at 0.0.  All state is
    local to the instance, so independent simulations never interact.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[ScheduledEvent] = []
        #: Events executed so far (a cheap progress/determinism probe).
        self.events_run = 0

    @property
    def now(self) -> float:
        """Current virtual time, in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of booked (non-cancelled) events still in the queue."""
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(
        self, delay_ms: float, callback: Callable[[], None]
    ) -> ScheduledEvent:
        """Book ``callback`` to fire at ``now + delay_ms``.

        A zero delay is allowed and fires after all events already
        booked for the current instant (FIFO within a timestamp).
        """
        if delay_ms < 0:
            raise KernelError(f"cannot schedule into the past: {delay_ms}")
        event = ScheduledEvent(self._now + delay_ms, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise KernelError("event queue went back in time")
            self._now = event.time
            self.events_run += 1
            callback = event.callback
            event.callback = None
            callback()
            return True
        return False

    def run(self, until: Optional[Callable[[], bool]] = None) -> float:
        """Drain the queue; returns the final virtual time.

        ``until`` (optional) is checked before each event: when it
        returns True the loop stops early with booked events intact.
        """
        while self._heap:
            if until is not None and until():
                break
            if not self.step():
                break
        return self._now
