"""Discrete-event kernel with a deterministic virtual clock.

The paper's simulation is a synchronous feed: one query is one Python
call stack, and "response time" does not exist ("any optimization of the
underlying P2P network ... will improve the response time ... but these
are completely independent issues").  To measure what the paper punts on
-- per-query latency under concurrent traffic -- the stack needs a
notion of *when* every message arrives, independent of wall-clock time.

:class:`EventKernel` supplies that notion.  It is a classic
discrete-event scheduler:

- events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
  increasing tie-breaker, so two events scheduled for the same virtual
  instant fire in scheduling order -- the whole simulation is a
  deterministic function of its inputs;
- ``schedule(delay_ms, callback)`` books a callback at ``now +
  delay_ms`` and returns a cancellable handle; ``post(delay_ms,
  callback)`` books one without a handle (the fire-and-forget hot path);
- ``run()`` pops events in order, advancing ``now`` to each event's
  timestamp before invoking it.

There is deliberately **no wall-clock anywhere**: the kernel never calls
``time.time`` or sleeps.  Virtual milliseconds are just an ordering
device, which is exactly what latency measurements need -- hop delays
(from :mod:`repro.net.latency`) order deliveries, overlapping lookups
contend for the same nodes in a reproducible interleaving, and the
response-time percentiles of a run are bit-stable across repetitions.

Two interchangeable schedulers implement that contract:

- ``EventKernel(scheduler="heap")`` (the default) keeps the original
  binary heap of :class:`ScheduledEvent` objects.  Every pop costs
  O(log n) Python-level comparisons, which is fine at the paper's scale
  but dominates wall-clock once millions of events are in flight.
- ``EventKernel(scheduler="wheel")`` is a calendar queue (an adaptive
  timing wheel): events land in buckets keyed by ``int(time / width)``,
  the next non-empty bucket is found by scanning forward from the
  current one, and a bucket is sorted once -- with C-level tuple
  comparisons -- when the clock reaches it.  The bucket width adapts in
  both directions (shrinking as density grows, widening as it falls) so
  buckets stay near a small target occupancy, giving amortized O(1)
  pops at dense horizons.  Events
  booked *into* the bucket currently being drained go to a small side
  heap that is merged on the fly, preserving exact ``(time, seq)``
  order.

Both schedulers run callbacks in the identical order for the identical
``schedule``/``post``/``cancel`` call sequence (a property-test suite
pins this), so switching schedulers never changes a measured number --
only how fast it is produced.
"""

from __future__ import annotations

import gc
import heapq
from typing import Callable, Optional

#: Scheduler names accepted by :class:`EventKernel`.
SCHEDULERS: tuple[str, ...] = ("heap", "wheel")


class KernelError(RuntimeError):
    """Raised on kernel misuse (negative delays, bad scheduler names, ...)."""


class ScheduledEvent:
    """Handle to one booked callback; ``cancel()`` unbooks it.

    Cancellation is lazy: the entry stays queued and is skipped when
    popped, which keeps ``cancel`` O(1).  The owning kernel keeps a live
    count so cancellation (and firing) never requires a queue scan.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_kernel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        kernel: "Optional[EventKernel]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._kernel = kernel

    def cancel(self) -> None:
        """Unbook the event; a no-op if it already fired."""
        if self.cancelled:
            return
        self.cancelled = True
        callback = self.callback
        self.callback = None  # release references early
        kernel = self._kernel
        self._kernel = None
        if kernel is not None and callback is not None:
            kernel._note_cancel()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventKernel:
    """Deterministic virtual-time event loop.

    ``now`` is in virtual milliseconds and starts at 0.0.  All state is
    local to the instance, so independent simulations never interact.
    ``EventKernel(scheduler="heap"|"wheel")`` picks the implementation;
    both obey the same ``(time, seq)`` FIFO-within-timestamp contract.
    """

    __slots__ = ("_now", "_seq", "_live", "events_run")

    #: Implementation name, overridden per subclass.
    scheduler_name = "heap"

    def __new__(cls, scheduler: str = "heap", **kwargs):
        if cls is EventKernel:
            try:
                cls = _IMPLEMENTATIONS[scheduler]
            except KeyError:
                raise KernelError(
                    f"unknown scheduler {scheduler!r}; expected one of "
                    f"{SCHEDULERS}"
                ) from None
        return object.__new__(cls)

    @property
    def now(self) -> float:
        """Current virtual time, in milliseconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of booked (non-cancelled) events still in the queue.

        O(1): a live counter maintained by schedule/cancel/pop, never a
        queue traversal.
        """
        return self._live

    def _note_cancel(self) -> None:
        self._live -= 1

    # Subclasses implement: schedule, post, step, run, stats.


class _HeapKernel(EventKernel):
    """The original binary-heap scheduler, plus O(1) ``pending`` and
    compaction of lazily-cancelled entries.

    Cancelled events used to stay heap-resident until popped, so a
    schedule/cancel churn loop grew the heap without bound.  The heap is
    now rebuilt (dropping cancelled entries) whenever they outnumber the
    live ones, keeping peak memory within 2x the live event count while
    preserving pop order exactly -- ``(time, seq)`` is a total order, so
    re-heapifying the surviving events cannot reorder anything.
    """

    __slots__ = ("_heap", "_cancelled_in_heap", "_compactions")

    scheduler_name = "heap"

    #: Never bother compacting heaps smaller than this.
    _COMPACT_MIN = 64

    def __init__(self, scheduler: str = "heap", **kwargs) -> None:
        self._now = 0.0
        self._seq = 0
        self._live = 0
        #: Events executed so far (a cheap progress/determinism probe).
        self.events_run = 0
        self._heap: list[ScheduledEvent] = []
        self._cancelled_in_heap = 0
        self._compactions = 0

    def schedule(
        self, delay_ms: float, callback: Callable[[], None]
    ) -> ScheduledEvent:
        """Book ``callback`` to fire at ``now + delay_ms``.

        A zero delay is allowed and fires after all events already
        booked for the current instant (FIFO within a timestamp).
        """
        if delay_ms < 0:
            raise KernelError(f"cannot schedule into the past: {delay_ms}")
        event = ScheduledEvent(self._now + delay_ms, self._seq, callback, self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def post(self, delay_ms: float, callback: Callable[[], None]) -> None:
        """``schedule`` without returning a cancellable handle."""
        self.schedule(delay_ms, callback)

    def _note_cancel(self) -> None:
        self._live -= 1
        self._cancelled_in_heap += 1
        heap = self._heap
        if (
            self._cancelled_in_heap > len(heap) // 2
            and len(heap) >= self._COMPACT_MIN
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors."""
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            if event.time < self._now:
                raise KernelError("event queue went back in time")
            self._now = event.time
            self.events_run += 1
            self._live -= 1
            callback = event.callback
            event.callback = None
            event._kernel = None
            callback()
            return True
        return False

    def run(self, until: Optional[Callable[[], bool]] = None) -> float:
        """Drain the queue; returns the final virtual time.

        ``until`` (optional) is checked before each event: when it
        returns True the loop stops early with booked events intact.
        """
        while self._heap:
            if until is not None and until():
                break
            if not self.step():
                break
        return self._now

    def stats(self) -> dict[str, int]:
        """Scheduler-internal operation counts (regression-guard probes)."""
        return {
            "scheduler": 0,  # 0 = heap, 1 = wheel (kept numeric for JSON)
            "heap_len": len(self._heap),
            "cancelled_in_heap": self._cancelled_in_heap,
            "compactions": self._compactions,
        }


class _WheelKernel(EventKernel):
    """Calendar-queue scheduler: adaptive-width buckets of event tuples.

    Entries are ``(time, seq, x)`` tuples -- ``x`` is a bare callback
    (from :meth:`post`) or a :class:`ScheduledEvent` handle (from
    :meth:`schedule`) -- so all ordering comparisons happen at C level.
    ``seq`` is unique, so a comparison never reaches ``x``.

    The bucket width rescales to the target occupancy whenever average
    occupancy drifts 4x past it in either direction: total entries moved
    by all rebuilds is O(n) amortized, buckets stay small enough that
    the one-time sort per bucket costs O(log target) comparisons per
    event, and sparse horizons stop paying ~1/occupancy empty forward
    probes per pop.  The next
    non-empty bucket is found by scanning forward (near-certain hit at
    target occupancy); a scan that exhausts its probe budget falls back
    to ``min()`` over the remaining bucket indices, which only happens
    in sparse tails where that set is small or time jumps are huge.
    """

    __slots__ = (
        "_inv",
        "_buckets",
        "_active",
        "_ai",
        "_alen",
        "_aidx",
        "_side",
        "_target",
        "_rebuilds",
        "_entries_moved",
        "_scan_probes",
        "_scan_fallbacks",
        "_side_pushes",
    )

    scheduler_name = "wheel"

    #: Probes budgeted per forward scan before falling back to min().
    _SCAN_LIMIT = 256
    #: Posts between occupancy checks (must be a power of two minus one).
    _RESIZE_MASK = 4095

    def __init__(
        self,
        scheduler: str = "wheel",
        width_ms: float = 1.0,
        target_occupancy: int = 8,
        **kwargs,
    ) -> None:
        if width_ms <= 0:
            raise KernelError(f"bucket width must be positive: {width_ms}")
        if target_occupancy < 1:
            raise KernelError("target occupancy must be >= 1")
        self._now = 0.0
        self._seq = 0
        self._live = 0
        self.events_run = 0
        self._inv = 1.0 / width_ms
        self._buckets: dict[int, list] = {}
        self._active: list = []
        self._ai = 0
        self._alen = 0
        self._aidx = -1
        self._side: list = []
        self._target = target_occupancy
        self._rebuilds = 0
        self._entries_moved = 0
        self._scan_probes = 0
        self._scan_fallbacks = 0
        self._side_pushes = 0

    # -- booking -----------------------------------------------------------

    def _book(self, delay_ms: float, x) -> tuple:
        if delay_ms < 0:
            raise KernelError(f"cannot schedule into the past: {delay_ms}")
        t = self._now + delay_ms
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        entry = (t, seq, x)
        idx = int(t * self._inv)
        # The side heap holds everything booked at or behind the bucket
        # currently being drained (idx can be *behind* it when the clock
        # has not yet advanced into the acquired bucket); the drain
        # merges it entry-by-entry, so ordering stays exact.
        if idx <= self._aidx:
            heapq.heappush(self._side, entry)
            self._side_pushes += 1
        else:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
            else:
                bucket.append(entry)
        if not (seq & self._RESIZE_MASK):
            self._maybe_resize()
        return entry

    def post(self, delay_ms: float, callback: Callable[[], None]) -> None:
        """Book a fire-and-forget callback (no cancellable handle).

        This is the hot path: one tuple and one list append per event,
        no per-event handle object.
        """
        self._book(delay_ms, callback)

    def schedule(
        self, delay_ms: float, callback: Callable[[], None]
    ) -> ScheduledEvent:
        """Book ``callback`` and return a cancellable handle."""
        event = ScheduledEvent(0.0, 0, callback, self)
        entry = self._book(delay_ms, event)
        event.time = entry[0]
        event.seq = entry[1]
        return event

    # -- adaptive width ----------------------------------------------------

    def _maybe_resize(self) -> None:
        # Only resize between bucket drains: the active bucket and side
        # heap are index-relative, so a width change mid-drain would
        # strand them.
        if self._ai < self._alen or self._side:
            return
        buckets = len(self._buckets)
        if buckets < 32:
            return
        occupancy = self._live / buckets
        target = self._target
        if occupancy > 4 * target:
            # Too dense: shrink buckets so the per-bucket sort stays small.
            self._rebuild(self._inv * (occupancy / target))
        elif occupancy < target / 4 and self._live >= 4096:
            # Too sparse: widen buckets so the forward scan stops paying
            # ~1/occupancy empty probes per acquire.  Both directions
            # rescale to the target, so a rebuild fires only when
            # occupancy drifts 4x past it -- the population must quadruple
            # (or quarter) between rebuilds, keeping total entry moves
            # O(n) amortized.
            self._rebuild(self._inv * (occupancy / target))

    def _rebuild(self, new_inv: float) -> None:
        """Re-bucket every pending entry under a new width.

        GC is paused for the duration: the rebuild allocates one new
        bucket list per index while millions of event tuples are live,
        and generational collections during that burst would rescan them
        all for nothing (nothing becomes garbage until the old dict is
        dropped at the end).
        """
        self._inv = new_inv
        self._rebuilds += 1
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            rebucketed: dict[int, list] = {}
            get = rebucketed.get
            for bucket in self._buckets.values():
                self._entries_moved += len(bucket)
                for entry in bucket:
                    idx = int(entry[0] * new_inv)
                    new_bucket = get(idx)
                    if new_bucket is None:
                        rebucketed[idx] = [entry]
                    else:
                        new_bucket.append(entry)
            self._buckets = rebucketed
            self._aidx = -1
        finally:
            if gc_was_enabled:
                gc.enable()

    # -- draining ----------------------------------------------------------

    def _acquire(self) -> Optional[list]:
        """Pop, sort, and activate the next non-empty bucket."""
        buckets = self._buckets
        if not buckets:
            return None
        base = int(self._now * self._inv)
        idx = self._aidx + 1 if self._aidx >= base else base
        get = buckets.get
        limit = idx + self._SCAN_LIMIT
        probes = 0
        while idx <= limit:
            bucket = get(idx)
            if bucket is not None:
                break
            idx += 1
            probes += 1
        else:
            idx = min(buckets)
            bucket = buckets[idx]
            self._scan_fallbacks += 1
        self._scan_probes += probes
        del buckets[idx]
        bucket.sort()
        self._active = bucket
        self._aidx = idx
        self._alen = len(bucket)
        self._ai = 0
        return bucket

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        heappop = heapq.heappop
        while True:
            side = self._side
            if self._ai < self._alen:
                entry = self._active[self._ai]
                if side and side[0] < entry:
                    entry = heappop(side)
                else:
                    self._ai += 1
            elif side:
                entry = heappop(side)
            elif self._acquire() is None:
                return False
            else:
                continue
            x = entry[2]
            if x.__class__ is ScheduledEvent:
                if x.cancelled:
                    continue
                callback = x.callback
                x.callback = None
                x._kernel = None
            else:
                callback = x
            self._now = entry[0]
            self.events_run += 1
            self._live -= 1
            callback()
            return True

    def run(self, until: Optional[Callable[[], bool]] = None) -> float:
        """Drain the queue; returns the final virtual time.

        With no ``until`` predicate the drain runs a tight loop over
        each sorted bucket (the web-scale fast path); with one, it falls
        back to per-event stepping so the predicate is checked before
        every event, matching the heap scheduler's semantics.
        """
        if until is not None:
            while self._live or self._has_entries():
                if until():
                    break
                if not self.step():
                    break
            return self._now
        heappop = heapq.heappop
        side = self._side
        nrun = 0
        live_drop = 0
        ai = self._ai
        try:
            while True:
                active = self._active
                alen = self._alen
                if ai >= alen:
                    if side:
                        entry = heappop(side)
                        x = entry[2]
                        if x.__class__ is ScheduledEvent:
                            if x.cancelled:
                                continue
                            callback = x.callback
                            x.callback = None
                            x._kernel = None
                        else:
                            callback = x
                        self._now = entry[0]
                        nrun += 1
                        live_drop += 1
                        callback()
                        continue
                    if self._acquire() is None:
                        return self._now
                    ai = 0
                    continue
                while ai < alen:
                    if side:
                        entry = active[ai]
                        if side[0] < entry:
                            entry = heappop(side)
                        else:
                            ai += 1
                        x = entry[2]
                        if x.__class__ is ScheduledEvent:
                            if x.cancelled:
                                continue
                            callback = x.callback
                            x.callback = None
                            x._kernel = None
                        else:
                            callback = x
                        self._now = entry[0]
                        nrun += 1
                        live_drop += 1
                        callback()
                    else:
                        i = ai
                        for entry in active[i:]:
                            x = entry[2]
                            if x.__class__ is ScheduledEvent:
                                if x.cancelled:
                                    i += 1
                                    if side:
                                        break
                                    continue
                                callback = x.callback
                                x.callback = None
                                x._kernel = None
                            else:
                                callback = x
                            self._now = entry[0]
                            i += 1
                            nrun += 1
                            live_drop += 1
                            callback()
                            if side:
                                break
                        ai = i
        finally:
            self._ai = ai
            self.events_run += nrun
            self._live -= live_drop

    def _has_entries(self) -> bool:
        """Whether any entries (live or cancelled) remain queued."""
        return (
            self._ai < self._alen or bool(self._side) or bool(self._buckets)
        )

    def stats(self) -> dict[str, int]:
        """Scheduler-internal operation counts (regression-guard probes)."""
        return {
            "scheduler": 1,
            "buckets": len(self._buckets),
            "rebuilds": self._rebuilds,
            "entries_moved": self._entries_moved,
            "scan_probes": self._scan_probes,
            "scan_fallbacks": self._scan_fallbacks,
            "side_pushes": self._side_pushes,
        }


_IMPLEMENTATIONS: dict[str, type] = {
    "heap": _HeapKernel,
    "wheel": _WheelKernel,
}
