"""The experiment driver: build the stack, feed queries, measure.

One :class:`Experiment` reproduces one cell of the paper's evaluation
grid.  The construction mirrors the paper's layering exactly:

    substrate (ideal ring / Chord / Kademlia)
      -> DHT storage (index store + publication/file store)
        -> index service (scheme + cache policy)
          -> lookup engine (one simulated user population)

The run has two modes sharing one workload and one chaos schedule:

- **sequential** (the default): queries are fed one at a time through the
  synchronous call stack, exactly as the paper's figures measure them;
- **concurrent** (``concurrency > 1``, a non-zero ``latency_model``, or
  an open-loop arrival process): lookups run as resumable state machines
  on the virtual-time event kernel, with message deliveries delayed by
  the latency model, so in-flight searches overlap and per-query
  response times (p50/p95/p99 on the virtual clock) become measurable.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
import warnings
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Optional

from repro import perf
from repro.analysis.stats import ExactQuantiles, LogBucketQuantiles
from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine, SearchTrace
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.scheme import (
    IndexScheme,
    article_predicates,
    complex_scheme,
    flat_scheme,
    simple_scheme,
)
from repro.core.trie import TrieIndex
from repro.core.service import IndexService
from repro.dht.base import DHTProtocol
from repro.dht.can import CANNetwork
from repro.dht.chord import ChordNetwork
from repro.dht.idspace import hash_key
from repro.dht.kademlia import KademliaNetwork
from repro.dht.pastry import PastryNetwork
from repro.dht.ring import IdealRing
from repro.net.adversary import ROLE_SYBIL, AdversarialTransport, AdversaryPlan
from repro.net.faults import MS_PER_TICK, FaultPlan, FaultyTransport
from repro.net.latency import parse_latency_model
from repro.net.transport import SimulatedTransport
from repro.obs.tracer import Tracer
from repro.sec import TrustLedger
from repro.sim.kernel import EventKernel
from repro.sim.metrics import ExperimentResult
from repro.storage.durable import FsyncPolicy, NodeWalSet
from repro.storage.store import DHTStorage
from repro.workload.corpus import CorpusConfig, SyntheticCorpus
from repro.workload.popularity import PowerLawPopularity
from repro.workload.querygen import QueryGenerator, WorkloadQuery

_SCHEME_BUILDERS = {
    "simple": simple_scheme,
    "flat": flat_scheme,
    "complex": complex_scheme,
}

#: Query count at which "auto" flips from the paper-scale machinery
#: (binary-heap kernel, exact percentiles) to the web-scale machinery
#: (timing-wheel kernel, log-bucket quantile sketch).  Every paper
#: preset sits well below this, so paper-scale numbers never change.
_WEB_SCALE_QUERIES = 200_000


@dataclass(frozen=True)
class ExperimentConfig:
    """One cell of the evaluation grid.

    Defaults are the paper's setup: 500 nodes, 10,000 articles, 50,000
    queries over the ideal substrate.  ``cache`` is "none", "multi",
    "single", or "lruK" (e.g. "lru30").  ``shortcut_top_n`` adds
    permanent deep-link index entries (Section IV-C) for the N most
    popular articles from every entry index class -- 0 reproduces the
    paper, >0 drives the shortcut ablation.
    """

    scheme: str = "simple"
    cache: str = "none"
    substrate: str = "ideal"
    num_nodes: int = 500
    num_articles: int = 10_000
    num_queries: int = 50_000
    num_authors: int = 4_000
    bits: int = 64
    replication: int = 1
    corpus_seed: int = 2003
    query_seed: int = 42
    shortcut_top_n: int = 0
    #: Number of concurrently active users.  1 keeps the paper's
    #: sequential feed; N > 1 runs a closed-loop population of N users
    #: on the event kernel, each issuing its next query as soon as the
    #: previous one completes, with lookups overlapping in virtual time.
    concurrency: int = 1
    #: Link-latency model for kernel mode: ``zero`` (the default, and
    #: the sequential semantics), ``constant[:MS]``, or
    #: ``uniform[:LOW:HIGH]`` (seeded per node pair).  Any non-zero
    #: model switches the run onto the virtual clock.
    latency_model: str = "zero"
    #: Open-loop arrival process: when > 0, queries arrive at Poisson
    #: times with this mean inter-arrival gap (virtual ms), round-robin
    #: across the user population, regardless of completions.  0 keeps
    #: the closed loop.
    arrival_interval_ms: float = 0.0
    #: Number of churn events across the query feed.  Each event removes
    #: one random node (losing its cache) and joins a fresh one, then
    #: repairs both stores -- the maintenance a DHash/PAST-class storage
    #: layer performs (Section III-A).  ``churn_mode`` places the events:
    #: "uniform" spreads them evenly; "poisson" draws each query position
    #: independently with rate churn_events/num_queries (a Poisson
    #: join/leave process over the feed).
    churn_events: int = 0
    churn_mode: str = "uniform"
    #: One seed drives *all* chaos randomness -- churn scheduling, crash
    #: victim selection, and message-fault draws share a single
    #: ``random.Random`` so every chaos run is bit-reproducible.
    churn_seed: int = 7
    #: Message-fault injection (see repro.net.faults): per-message drop
    #: probability, per-exchange duplicate probability, max added latency
    #: in virtual milliseconds per delivered message.  All zero = the
    #: reliable network.
    fault_drop_probability: float = 0.0
    fault_duplicate_probability: float = 0.0
    fault_latency_ms: float = 0.0
    #: Deprecated pre-kernel spelling of ``fault_latency_ms`` (one
    #: legacy tick is ``MS_PER_TICK`` virtual milliseconds).  Setting
    #: both is an error.
    fault_latency_ticks: int = 0
    #: Transient node crashes: events spread uniformly over the feed;
    #: each crashes one random live node (it stays in the overlay and
    #: registered, but refuses delivery) for ``crash_downtime_queries``
    #: queries, then it recovers with its stored state intact.
    crash_events: int = 0
    crash_downtime_queries: int = 200
    #: Restart chaos: events spread uniformly over the feed; each kills
    #: one random live node outright -- SIGKILL semantics, so unlike a
    #: crash its in-memory state (stored entries *and* cache) dies with
    #: the process -- for ``restart_downtime_queries`` queries, then
    #: restarts it.  With ``durability="wal"`` the node recovers by
    #: replaying its journal; with ``"none"`` it comes back empty and
    #: only replica repair can restore what it held.
    restart_events: int = 0
    restart_downtime_queries: int = 200
    #: Additional restart events that model a power loss: the victim's
    #: un-fsynced WAL tail is destroyed at kill time, so recovery also
    #: exercises torn-tail truncation.
    power_loss_events: int = 0
    #: Node-state durability: "none" (the seed's in-memory nodes) or
    #: "wal" (every node journals acknowledged entries, cache shortcuts,
    #: and removals to a per-node WAL + snapshot under ``data_dir`` --
    #: see :mod:`repro.storage.durable`).
    durability: str = "none"
    #: WAL sync policy for durable runs: always | interval[:N] | never.
    fsync: str = "interval"
    #: Root directory for the per-node journals (durability="wal").
    #: None uses a fresh temporary directory, removed when the run ends.
    data_dir: Optional[str] = None
    #: Structured per-lookup tracing (see :mod:`repro.obs`).  Off by
    #: default -- an untraced run constructs no tracer and pays zero
    #: overhead; a traced run records every lookup span but changes no
    #: aggregate (tracing is read-only observation).
    trace: bool = False
    #: Event-kernel scheduler for kernel-mode runs: "heap" (the seed
    #: binary heap), "wheel" (the calendar-queue timing wheel), or
    #: "auto" (heap below ``_WEB_SCALE_QUERIES`` queries, wheel at or
    #: above).  Both schedulers honour the same (time, seq) ordering
    #: contract, so the choice changes throughput only, never any
    #: measured number.
    scheduler: str = "auto"
    #: Fraction of workload queries loosened into predicate queries
    #: (prefix / wildcard / year-range -- see
    #: :meth:`repro.workload.querygen.QueryGenerator._predicated`).
    #: 0 draws no extra randomness: exact-only runs are bit-identical
    #: to the pre-algebra simulator.
    predicate_mix: float = 0.0
    #: How predicate queries are resolved: "chains" (the paper's
    #: generalization/specialization fallback over the ordinary covering
    #: chains) or "trie" (the trie-over-DHT index of
    #: :mod:`repro.core.trie`: per-field tries materialized as index
    #: entries, predicate lookups rewritten onto trie nodes).  Ignored
    #: unless ``predicate_mix`` > 0.
    index_structure: str = "chains"
    #: Response-time collector: "exact" (every sample kept; percentiles
    #: bit-identical to the seed accumulation list), "sketch" (constant
    #: memory, <1% relative error -- see
    #: :class:`repro.analysis.stats.LogBucketQuantiles`), or "auto"
    #: (exact below ``_WEB_SCALE_QUERIES`` queries, sketch at or above).
    metrics: str = "auto"
    #: Adversarial (Byzantine) population -- see
    #: :mod:`repro.net.adversary`.  Poisoners fabricate index entries
    #: and serve forged files; liars forge shortcut referrals; Sybils
    #: are adversary-controlled joiners flooded into the overlay over
    #: the feed; eclipse victims have their lookup traffic dropped with
    #: probability ``adversary_eclipse_drop``.  All zero keeps the run
    #: bit-identical to the benign simulator.
    adversary_poisoners: int = 0
    adversary_liars: int = 0
    adversary_sybil_joins: int = 0
    adversary_eclipse_victims: int = 0
    adversary_eclipse_drop: float = 1.0
    #: The repro.sec defence: content authentication (publisher-signed
    #: index entries and content-addressed descriptors -- see
    #: :mod:`repro.sec.entries`; *fabricated* responses surface as
    #: typed ``verify_failed`` delivery errors and trigger replica
    #: failover, while withheld answers are cross-checked against the
    #: next replica) plus a per-peer trust ledger that deprioritizes
    #: misbehaving replicas.  Transport frame signatures alone would
    #: not help here -- a lying endpoint signs its forgery with its own
    #: valid key.  Off is the undefended baseline the adversarial
    #: comparison measures against.
    verify_signatures: bool = False

    def __post_init__(self) -> None:
        if self.scheme not in _SCHEME_BUILDERS:
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.substrate not in ("ideal", "chord", "kademlia", "pastry", "can"):
            raise ValueError(f"unknown substrate {self.substrate!r}")
        CachePolicy.parse(self.cache)  # validates
        if self.num_nodes < 1 or self.num_articles < 1 or self.num_queries < 0:
            raise ValueError("sizes must be positive")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.arrival_interval_ms < 0:
            raise ValueError("arrival interval must be non-negative")
        parse_latency_model(self.latency_model)  # validates the spec
        if self.churn_mode not in ("uniform", "poisson"):
            raise ValueError(f"unknown churn mode {self.churn_mode!r}")
        if self.crash_events < 0 or self.crash_downtime_queries < 1:
            raise ValueError("crash schedule must be non-negative")
        if self.restart_events < 0 or self.power_loss_events < 0:
            raise ValueError("restart schedule must be non-negative")
        if self.restart_downtime_queries < 1:
            raise ValueError("restart downtime must be >= 1 query")
        if self.durability not in ("none", "wal"):
            raise ValueError(f"unknown durability {self.durability!r}")
        FsyncPolicy.parse(self.fsync)  # validates
        if self.scheduler not in ("auto", "heap", "wheel"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")
        if self.metrics not in ("auto", "exact", "sketch"):
            raise ValueError(f"unknown metrics mode {self.metrics!r}")
        if not 0.0 <= self.predicate_mix <= 1.0:
            raise ValueError(f"predicate_mix must be in [0, 1]: {self.predicate_mix}")
        if self.index_structure not in ("chains", "trie"):
            raise ValueError(f"unknown index structure {self.index_structure!r}")
        if self.fault_latency_ticks:
            if self.fault_latency_ms:
                raise ValueError(
                    "give fault_latency_ms or fault_latency_ticks, not both"
                )
            warnings.warn(
                "ExperimentConfig(fault_latency_ticks=...) is deprecated; "
                "use fault_latency_ms (1 tick = 1 virtual ms)",
                DeprecationWarning,
                stacklevel=2,
            )
        # Delegates range checks on the probabilities / latency.
        self.fault_plan()
        # Delegates range checks on the adversary counts / drop rate.
        self.adversary_plan()

    @property
    def effective_fault_latency_ms(self) -> float:
        """Injected-latency bound in ms, folding in the deprecated ticks."""
        return self.fault_latency_ms + self.fault_latency_ticks * MS_PER_TICK

    def fault_plan(self) -> FaultPlan:
        """The message-fault plan this configuration describes."""
        return FaultPlan(
            drop_probability=self.fault_drop_probability,
            duplicate_probability=self.fault_duplicate_probability,
            max_latency_ms=self.effective_fault_latency_ms,
            seed=self.churn_seed,
        )

    def adversary_plan(self) -> AdversaryPlan:
        """The Byzantine-population plan this configuration describes."""
        return AdversaryPlan(
            poisoners=self.adversary_poisoners,
            liars=self.adversary_liars,
            sybil_joins=self.adversary_sybil_joins,
            eclipse_victims=self.adversary_eclipse_victims,
            eclipse_drop=self.adversary_eclipse_drop,
            seed=self.churn_seed,
        )

    @property
    def has_adversary(self) -> bool:
        """Whether any Byzantine behavior is active in this cell."""
        return not self.adversary_plan().is_zero

    @property
    def has_chaos(self) -> bool:
        """Whether any failure mechanism is active in this cell."""
        return bool(
            self.churn_events
            or self.crash_events
            or self.restart_events
            or self.power_loss_events
            or not self.fault_plan().is_zero
            or self.has_adversary
        )

    @property
    def uses_kernel(self) -> bool:
        """Whether this cell runs on the virtual-time event kernel."""
        return (
            self.concurrency > 1
            or self.latency_model != "zero"
            or self.arrival_interval_ms > 0
        )

    @property
    def resolved_scheduler(self) -> str:
        """The concrete kernel scheduler ("auto" resolved by scale)."""
        if self.scheduler != "auto":
            return self.scheduler
        return "wheel" if self.num_queries >= _WEB_SCALE_QUERIES else "heap"

    @property
    def resolved_metrics(self) -> str:
        """The concrete collector mode ("auto" resolved by scale)."""
        if self.metrics != "auto":
            return self.metrics
        return "sketch" if self.num_queries >= _WEB_SCALE_QUERIES else "exact"

    def scaled(self, factor: float) -> "ExperimentConfig":
        """A proportionally smaller/larger copy (for quick tests)."""
        return replace(
            self,
            num_nodes=max(1, int(self.num_nodes * factor)),
            num_articles=max(1, int(self.num_articles * factor)),
            num_queries=max(0, int(self.num_queries * factor)),
            num_authors=max(1, int(self.num_authors * factor)),
        )


class Experiment:
    """Builds the full stack for a config and runs the query feed."""

    def __init__(
        self,
        config: ExperimentConfig,
        corpus: Optional[SyntheticCorpus] = None,
        scheme: Optional[IndexScheme] = None,
    ) -> None:
        """``corpus`` (and ``scheme``) may be shared across experiments
        with identical corpus parameters to avoid re-generation."""
        self.config = config
        self.corpus = corpus or SyntheticCorpus(
            CorpusConfig(
                num_articles=config.num_articles,
                num_authors=config.num_authors,
                seed=config.corpus_seed,
            )
        )
        if len(self.corpus) != config.num_articles:
            raise ValueError("shared corpus does not match the configuration")
        if scheme is not None:
            self.scheme = scheme
        elif config.predicate_mix > 0:
            # Predicate workloads need the scheme to declare the kinds it
            # resolves.  The trie cell also declares levels (so lookups
            # rewrite onto trie nodes); the chains cell declares kinds
            # only, opting into the specialization fallback.
            declarations = article_predicates()
            if config.index_structure != "trie":
                declarations = {
                    field: replace(declared, trie_levels=())
                    for field, declared in declarations.items()
                }
            self.scheme = _SCHEME_BUILDERS[config.scheme](
                ARTICLE_SCHEMA, predicates=declarations
            )
        else:
            self.scheme = _SCHEME_BUILDERS[config.scheme](ARTICLE_SCHEMA)
        self.protocol = self._build_substrate()
        # One seeded RNG drives churn scheduling, crash victim selection,
        # and message-fault draws: chaos runs are bit-reproducible, and a
        # zero fault plan makes the wrapper draw-free and transparent.
        self._chaos_rng = random.Random(config.churn_seed)
        if config.has_adversary or config.verify_signatures:
            # The adversarial wrapper is only constructed when someone
            # misbehaves (or verification is measured), so every benign
            # cell keeps the exact seed transport object.
            self.transport: FaultyTransport = AdversarialTransport(
                SimulatedTransport(),
                config.fault_plan(),
                adversary=config.adversary_plan(),
                rng=self._chaos_rng,
                verify=config.verify_signatures,
            )
        else:
            self.transport = FaultyTransport(
                SimulatedTransport(), config.fault_plan(), rng=self._chaos_rng
            )
        #: Per-peer trust ledger (the repro.sec defence), or None when
        #: ``config.verify_signatures`` is off -- the service then pays
        #: zero trust overhead, like an untraced run pays no tracer.
        self.trust: Optional[TrustLedger] = None
        if config.verify_signatures:
            self.trust = TrustLedger()
        #: The lookup tracer, or None when ``config.trace`` is off.
        self.tracer: Optional[Tracer] = None
        if config.trace:
            self.tracer = Tracer(
                meta={
                    "scheme": config.scheme,
                    "cache": config.cache,
                    "substrate": config.substrate,
                    "num_nodes": config.num_nodes,
                    "num_articles": config.num_articles,
                    "num_queries": config.num_queries,
                    "concurrency": config.concurrency,
                    "latency_model": config.latency_model,
                    "corpus_seed": config.corpus_seed,
                    "query_seed": config.query_seed,
                    "churn_seed": config.churn_seed,
                }
            )
            self.transport.bind_tracer(self.tracer)
        self.index_store = DHTStorage(
            self.protocol, replication=config.replication
        )
        self.file_store = DHTStorage(
            self.protocol, replication=config.replication
        )
        self.index_store.tracer = self.tracer
        self.file_store.tracer = self.tracer
        policy, capacity = CachePolicy.parse(config.cache)
        self.service = IndexService(
            ARTICLE_SCHEMA,
            self.scheme,
            self.index_store,
            self.file_store,
            self.transport,
            cache_policy=policy,
            cache_capacity=capacity,
            trust=self.trust,
        )
        if config.has_adversary:
            # Recruitment draws from the chaos RNG before any per-message
            # fault draw, so the compromised population is fixed by the
            # seed alone (and identical across verify on/off cells).
            self.transport.recruit(
                [
                    self.service.endpoint_name(node)
                    for node in self.protocol.node_ids
                ]
            )
        #: The per-node durability journal (``durability="wal"``), else
        #: None.  Attaching it journals every acknowledged store/cache
        #: mutation -- population included -- so a killed node's state
        #: can be replayed at restart.
        self.walset: Optional[NodeWalSet] = None
        self._data_dir: Optional[str] = None
        self._owns_data_dir = False
        if config.durability == "wal":
            self._data_dir = config.data_dir
            if self._data_dir is None:
                self._data_dir = tempfile.mkdtemp(prefix="repro-wal-")
                self._owns_data_dir = True
            self.walset = NodeWalSet(self._data_dir, fsync=config.fsync)
            self.index_store.attach_journal(self.walset, "index")
            self.file_store.attach_journal(self.walset, "file")
            self.service.journal = self.walset
        self.engine = LookupEngine(self.service, user="user:0", tracer=self.tracer)
        self._populated = False
        self._dht_hops_total = 0
        self._dht_lookups = 0
        self._join_counter = config.num_nodes
        self._sybil_counter = 0
        #: Sybil-flood schedule: query positions at which one adversary-
        #: controlled node joins (filled by :meth:`_chaos_schedule`).
        self._sybil_positions: set[int] = set()
        self.churn_keys_moved = 0
        self.repair_keys = 0
        self.repair_bytes = 0
        #: Nodes currently in a crash window, mapped to their scheduled
        #: recovery query position.
        self._crashed_until: dict[int, int] = {}
        #: Nodes currently in a restart window, mapped to their
        #: scheduled recovery position and the power-loss flag.
        self._restarting_until: dict[int, tuple[int, bool]] = {}
        #: Restart schedule: query position -> power-loss flag (filled
        #: by :meth:`_chaos_schedule`).
        self._restart_positions: dict[int, bool] = {}
        self._restarts = 0
        self._power_losses = 0
        self._recovered_entries = 0
        self._recovered_cache_entries = 0
        self._wal_records_replayed = 0
        self._wal_torn_bytes = 0
        self._recovery_replay_ms = 0.0
        self._post_restart_searches = 0
        self._post_restart_found = 0
        self._any_recovery = False
        #: Optional observer called with every SearchTrace as the feed
        #: runs (determinism and zero-fault-identity tests use this).
        self.trace_sink: Optional[Callable[[SearchTrace], None]] = None
        #: Kernel scheduler statistics from the last kernel-mode run
        #: (merged into ``result.perf_counters`` with a ``kernel_``
        #: prefix; empty for sequential runs).
        self._kernel_stats: dict[str, int] = {}

    def _build_substrate(self) -> DHTProtocol:
        config = self.config
        node_ids = sorted(
            {hash_key(f"node-{i}", config.bits) for i in range(config.num_nodes)}
        )
        if len(node_ids) != config.num_nodes:
            raise RuntimeError("node id collision; increase bits")
        if config.substrate == "ideal":
            return IdealRing.bulk_build(node_ids, bits=config.bits)
        if config.substrate == "chord":
            return ChordNetwork.bulk_build(node_ids, bits=config.bits)
        if config.substrate == "kademlia":
            return KademliaNetwork.bulk_build(node_ids, bits=config.bits)
        if config.substrate == "pastry":
            return PastryNetwork.bulk_build(node_ids, bits=config.bits)
        return CANNetwork.bulk_build(node_ids, bits=config.bits)

    # -- population --------------------------------------------------------------

    def populate(self) -> None:
        """Insert every corpus record (files + index entries)."""
        if self._populated:
            return
        for record in self.corpus.records:
            self.service.insert_record(record)
        if (
            self.config.predicate_mix > 0
            and self.config.index_structure == "trie"
        ):
            TrieIndex(self.service).insert_all(self.corpus.records)
        if self.config.shortcut_top_n:
            entry_classes = self.scheme.entry_classes()
            top = self.corpus.records[: self.config.shortcut_top_n]
            for record in top:
                for keyset in entry_classes:
                    self.service.insert_shortcut_mapping(record, keyset)
        self._populated = True

    # -- run ----------------------------------------------------------------------

    def run(self) -> ExperimentResult:
        """Populate, feed the query workload, and collect every metric.

        Durable runs flush and close the per-node journals on the way
        out (and remove the temporary data directory when the run owns
        it); pass an explicit ``data_dir`` to inspect the files after.
        """
        try:
            return self._run()
        finally:
            self.close()

    def close(self) -> None:
        """Release durability resources: journal handles, owned tmpdir.

        Idempotent, and safe to skip for non-durable runs.  The journal
        reopens lazily if the experiment object keeps being used.
        """
        if self.walset is not None:
            self.walset.close()
        if self._owns_data_dir and self._data_dir is not None:
            shutil.rmtree(self._data_dir, ignore_errors=True)

    def _run(self) -> ExperimentResult:
        started = time.monotonic()
        perf_before = perf.snapshot()
        self.populate()
        config = self.config
        result = ExperimentResult(
            scheme=config.scheme,
            cache=config.cache,
            substrate=config.substrate,
            num_nodes=config.num_nodes,
            num_articles=config.num_articles,
            num_queries=config.num_queries,
            concurrency=config.concurrency,
            latency_model=config.latency_model,
        )
        result.index_storage_bytes = self.service.index_storage_bytes()
        result.article_bytes = self.corpus.total_article_bytes()

        generator = QueryGenerator(
            self.corpus,
            PowerLawPopularity.for_population(len(self.corpus)),
            seed=config.query_seed,
            predicate_mix=config.predicate_mix,
        )
        churn_positions, crash_positions = self._chaos_schedule()

        feed = generator.generate(config.num_queries)
        if config.uses_kernel:
            self._run_concurrent(result, feed, churn_positions, crash_positions)
        else:
            self._run_sequential(result, feed, churn_positions, crash_positions)
        self._process_recoveries(config.num_queries)
        self._collect(result)
        result.perf_counters = perf.delta(perf_before, perf.snapshot())
        for name, value in self._kernel_stats.items():
            result.perf_counters[f"kernel_{name}"] = value
        for counter in (
            "fault_drops",
            "fault_duplicates",
            "fault_crashed_sends",
            "fault_latency_ms",
            "service_failovers",
            "storage_failovers",
        ):
            setattr(result, counter, result.perf_counters.get(counter, 0))
        result.repair_keys = self.repair_keys
        result.repair_bytes = self.repair_bytes
        counts = result.perf_counters
        result.verify_failures = counts.get("sec_verify_failures", 0)
        result.contradictions = counts.get("sec_contradictions", 0)
        result.poisoned_results = counts.get("sec_poisoned_results", 0)
        result.forged_answers = counts.get(
            "sec_poisoned_answers", 0
        ) + counts.get("sec_forged_referrals", 0)
        result.eclipse_drops = counts.get("sec_eclipse_drops", 0)
        result.sybil_joins = counts.get("sec_sybil_joins", 0)
        if isinstance(self.transport, AdversarialTransport):
            result.adversarial_nodes = len(self.transport.roles)
            result.eclipsed_nodes = len(self.transport.eclipsed)
        if self.trust is not None:
            result.low_trust_peers = len(self.trust.flagged())
        if result.searches:
            result.poisoned_result_rate = (
                result.poisoned_results / result.searches
            )
        result.restarts = self._restarts
        result.power_losses = self._power_losses
        result.recovered_entries = self._recovered_entries
        result.recovered_cache_entries = self._recovered_cache_entries
        result.wal_records_replayed = self._wal_records_replayed
        result.wal_torn_bytes = self._wal_torn_bytes
        result.recovery_replay_ms = self._recovery_replay_ms
        result.post_restart_searches = self._post_restart_searches
        result.post_restart_found = self._post_restart_found
        if self._post_restart_searches:
            result.post_restart_success_rate = (
                self._post_restart_found / self._post_restart_searches
            )
        result.runtime_seconds = time.monotonic() - started
        return result

    def write_trace(self, path: str) -> int:
        """Export the recorded lookup trace as JSONL; returns the event
        count.  Requires the experiment to be configured with
        ``trace=True``."""
        if self.tracer is None:
            raise RuntimeError(
                "no trace recorded: configure the experiment with trace=True"
            )
        return self.tracer.write_jsonl(path)

    def _run_sequential(
        self,
        result: ExperimentResult,
        feed: Iterable[WorkloadQuery],
        churn_positions: set[int],
        crash_positions: set[int],
    ) -> None:
        """The paper's feed: one query at a time through the call stack."""
        meter = self.transport.meter
        for position, workload_query in enumerate(feed):
            self._dispatch_chaos(position, churn_positions, crash_positions)
            trace = self.engine.search(workload_query.query, workload_query.target)
            meter.end_query()
            self._record_trace(result, trace)

    def _run_concurrent(
        self,
        result: ExperimentResult,
        feed: Iterable[WorkloadQuery],
        churn_positions: set[int],
        crash_positions: set[int],
    ) -> None:
        """Kernel mode: overlapping lookups on the virtual clock.

        Closed loop by default -- each of the ``concurrency`` users
        starts its next query the moment the previous one completes --
        or open loop when ``arrival_interval_ms`` > 0, with Poisson
        arrivals round-robin across the user population.  Chaos events
        fire at the same feed positions as in sequential mode, applied
        when the query at that position is dispatched.
        """
        config = self.config
        kernel = EventKernel(scheduler=config.resolved_scheduler)
        latency = parse_latency_model(
            config.latency_model, seed=config.churn_seed
        )
        self.transport.bind_clock(kernel, latency)
        if self.tracer is not None:
            self.tracer.bind_clock(kernel)
        engines = [self.engine] + [
            LookupEngine(self.service, user=f"user:{index}", tracer=self.tracer)
            for index in range(1, config.concurrency)
        ]
        meter = self.transport.meter
        # Exact mode keeps every sample (bit-identical to the seed's
        # accumulation list); sketch mode is constant-memory for feeds
        # where 10^6+ floats per metric would dominate the footprint.
        if config.resolved_metrics == "sketch":
            response_times = LogBucketQuantiles()
        else:
            response_times = ExactQuantiles()
        # The feed is a generator: closed-loop mode pulls queries one at
        # a time as users free up, so the 10^6-query web-scale workload
        # never materializes in memory.
        items = enumerate(feed)

        def finish(trace: SearchTrace, started_at: float) -> None:
            response_times.add(kernel.now - started_at)
            # Overlapping lookups cannot share the meter's scratch set;
            # each trace carries its own visited nodes (Fig 15).
            meter.count_query(
                {self.service.endpoint_name(node) for node, _ in trace.visited}
            )
            self._record_trace(result, trace)

        def begin(
            engine: LookupEngine,
            position: int,
            workload_query: WorkloadQuery,
            and_then: Optional[Callable[[], None]] = None,
        ) -> None:
            self._dispatch_chaos(position, churn_positions, crash_positions)
            started_at = kernel.now

            def on_complete(trace: SearchTrace) -> None:
                finish(trace, started_at)
                if and_then is not None:
                    and_then()

            engine.start_async(
                workload_query.query, workload_query.target, kernel, on_complete
            )

        def begin_next(engine: LookupEngine) -> None:
            item = next(items, None)
            if item is None:
                return
            position, workload_query = item
            begin(
                engine,
                position,
                workload_query,
                and_then=lambda: begin_next(engine),
            )

        if config.arrival_interval_ms > 0:
            # Open loop: arrival times are drawn up front from their own
            # seeded RNG, independent of chaos and completion order (the
            # whole feed must be pre-booked, so this mode stays eager).
            arrival_rng = random.Random(config.query_seed ^ 0x5EED)
            arrival_at = 0.0
            for position, workload_query in items:
                arrival_at += arrival_rng.expovariate(
                    1.0 / config.arrival_interval_ms
                )
                kernel.post(
                    arrival_at,
                    lambda engine=engines[position % len(engines)],
                    position=position,
                    workload_query=workload_query: begin(
                        engine, position, workload_query
                    ),
                )
        else:
            for engine in engines:
                begin_next(engine)

        kernel.run()
        self._kernel_stats = {"events_run": kernel.events_run}
        self._kernel_stats.update(kernel.stats())
        if result.searches != config.num_queries:
            raise RuntimeError(
                f"kernel drained with {result.searches} of "
                f"{config.num_queries} lookups completed"
            )
        result.virtual_time_ms = kernel.now
        if len(response_times):
            result.response_time_ms_mean = response_times.mean
            result.response_time_ms_p50 = response_times.percentile(0.50)
            result.response_time_ms_p95 = response_times.percentile(0.95)
            result.response_time_ms_p99 = response_times.percentile(0.99)

    def _dispatch_chaos(
        self,
        position: int,
        churn_positions: set[int],
        crash_positions: set[int],
    ) -> None:
        """Apply the chaos schedule due at one query position."""
        self._process_recoveries(position)
        if position in self._sybil_positions:
            self._sybil_join_event()
        if position in churn_positions:
            self._churn_event()
        if position in crash_positions:
            self._crash_event(position)
        if position in self._restart_positions:
            self._restart_event(position, self._restart_positions[position])

    def _record_trace(self, result: ExperimentResult, trace: SearchTrace) -> None:
        """Fold one completed lookup into the running result."""
        if self.trace_sink is not None:
            self.trace_sink(trace)
        result.searches += 1
        result.found += int(trace.found)
        if not trace.query.is_exact():
            result.predicate_queries += 1
        if self._any_recovery:
            # Every lookup completing after the first restart recovery
            # counts toward the post-restart success rate -- whether
            # recovered state actually serves.
            self._post_restart_searches += 1
            self._post_restart_found += int(trace.found)
        result.total_interactions += trace.interactions
        result.total_retries += trace.retries
        result.total_failed_sends += trace.failed_sends
        result.lookups_gave_up += int(trace.gave_up)
        if trace.errors:
            result.nonindexed_queries += 1
            result.total_error_interactions += trace.errors
        if trace.cache_hit:
            result.cache_hits += 1
        if trace.first_contact_hit:
            result.first_contact_hits += 1
        self._dht_hops_total += sum(
            1 for _ in trace.visited
        )  # interactions resolve one key each

    def _chaos_schedule(self) -> tuple[set[int], set[int]]:
        """Query positions at which churn and crash events fire.

        Computed up front from the shared chaos RNG, so the schedule is
        independent of how many per-message fault draws the feed makes.
        Uniform mode spreads events evenly (the seed behaviour); poisson
        mode draws each position independently at the configured rate.
        """
        config = self.config
        churn_positions: set[int] = set()
        if config.churn_events:
            if config.churn_mode == "poisson" and config.num_queries:
                rate = min(1.0, config.churn_events / config.num_queries)
                churn_positions = {
                    position
                    for position in range(config.num_queries)
                    if self._chaos_rng.random() < rate
                }
            else:
                stride = max(1, config.num_queries // (config.churn_events + 1))
                churn_positions = {
                    stride * (event + 1) for event in range(config.churn_events)
                }
        crash_positions: set[int] = set()
        if config.crash_events:
            stride = max(1, config.num_queries // (config.crash_events + 1))
            crash_positions = {
                stride * (event + 1) for event in range(config.crash_events)
            }
        self._restart_positions = {}
        total_restarts = config.restart_events + config.power_loss_events
        if total_restarts:
            # Which of the scheduled kills are power losses is drawn
            # from the shared chaos RNG (after the churn draws, so
            # restart-free cells see an unchanged stream).
            flags = [False] * config.restart_events + (
                [True] * config.power_loss_events
            )
            self._chaos_rng.shuffle(flags)
            stride = max(1, config.num_queries // (total_restarts + 1))
            self._restart_positions = {
                stride * (event + 1): flags[event]
                for event in range(total_restarts)
            }
        self._sybil_positions = set()
        if config.adversary_sybil_joins:
            # Spread uniformly, like crashes; placement draws no RNG, so
            # the benign chaos stream is unchanged by a Sybil flood.
            stride = max(
                1, config.num_queries // (config.adversary_sybil_joins + 1)
            )
            self._sybil_positions = {
                stride * (event + 1)
                for event in range(config.adversary_sybil_joins)
            }
        return churn_positions, crash_positions

    def _collect(self, result: ExperimentResult) -> None:
        queries = max(1, result.searches)
        result.avg_interactions = result.total_interactions / queries
        result.success_rate = result.found / queries
        result.retries_per_lookup = result.total_retries / queries
        meter = self.transport.meter
        result.normal_bytes_total = meter.normal_bytes
        result.cache_bytes_total = meter.cache_bytes
        result.normal_bytes_per_query = meter.normal_bytes / queries
        result.cache_bytes_per_query = meter.cache_bytes / queries
        result.hit_ratio = result.cache_hits / queries
        if result.cache_hits:
            result.first_contact_hit_share = (
                result.first_contact_hits / result.cache_hits
            )

        cache_sizes = list(self.service.cache_sizes().values())
        if cache_sizes:
            result.avg_cached_keys_per_node = sum(cache_sizes) / len(cache_sizes)
            result.max_cached_keys = max(cache_sizes)
        empty, full, total = self.service.cache_occupancy()
        if total:
            result.caches_empty_fraction = empty / total
            result.caches_full_fraction = full / total

        index_keys = list(self.service.index_keys_per_node().values())
        if index_keys:
            result.avg_index_keys_per_node = sum(index_keys) / len(index_keys)

        counts = meter.query_counts_by_node()
        percentages = sorted(
            (100.0 * count / queries for count in counts.values()), reverse=True
        )
        result.node_query_percentages = percentages

        result.avg_dht_hops = self._average_dht_hops()

    def _churn_event(self) -> None:
        """One membership change: a random leave, a fresh join, repair.

        The departed node's physical copies leave with it; the
        incremental :meth:`DHTStorage.repair` pass then re-replicates the
        keys it was responsible for and seeds the joiner -- churn-
        triggered maintenance instead of the full rebalance.
        """
        victims = self.protocol.node_ids
        victim = victims[self._chaos_rng.randrange(len(victims))]
        self.protocol.remove_node(victim)
        self.service.unregister_node(victim)
        self._crashed_until.pop(victim, None)
        # A churned-away node departs for good: cancel any pending
        # restart recovery (drop_node below also deletes its journal).
        self._restarting_until.pop(victim, None)
        self.index_store.drop_node(victim)
        self.file_store.drop_node(victim)
        while True:
            self._join_counter += 1
            joiner = hash_key(f"node-{self._join_counter}", self.config.bits)
            if joiner not in self.protocol:
                break
        self.protocol.add_node(joiner)
        self.service.register_nodes()
        for store in (self.index_store, self.file_store):
            report = store.repair()
            self.churn_keys_moved += report.keys_repaired
            self.repair_keys += report.keys_repaired
            self.repair_bytes += report.bytes_copied

    def _sybil_join_event(self) -> None:
        """One Sybil-flood step: an adversary-controlled node joins.

        The Sybil takes the ordinary join path -- it becomes responsible
        for key ranges and the repair pass replicates real entries onto
        it -- then the transport marks it, after which it withholds
        every answer those entries should have produced.  That is what
        makes a Sybil worse than a crash: the overlay believes the keys
        are well-replicated.
        """
        while True:
            self._sybil_counter += 1
            joiner = hash_key(f"sybil-{self._sybil_counter}", self.config.bits)
            if joiner not in self.protocol:
                break
        self.protocol.add_node(joiner)
        self.service.register_nodes()
        assert isinstance(self.transport, AdversarialTransport)
        self.transport.mark(self.service.endpoint_name(joiner), ROLE_SYBIL)
        perf.counters.sec_sybil_joins += 1
        for store in (self.index_store, self.file_store):
            report = store.repair()
            self.repair_keys += report.keys_repaired
            self.repair_bytes += report.bytes_copied

    def _crash_event(self, position: int) -> None:
        """Crash one random live node for a fixed window of queries.

        The node stays in the overlay and registered -- lookups still
        resolve to it -- but the transport refuses delivery until it
        recovers, so retries and replica failover must carry the load.
        """
        candidates = [
            node
            for node in self.protocol.node_ids
            if node not in self._crashed_until
            and node not in self._restarting_until
        ]
        if not candidates:
            return
        victim = candidates[self._chaos_rng.randrange(len(candidates))]
        self.protocol.fail_node(victim)
        self.transport.fail_node(self.service.endpoint_name(victim))
        self._crashed_until[victim] = position + self.config.crash_downtime_queries

    def _restart_event(self, position: int, power_loss: bool) -> None:
        """Kill one random live node outright (SIGKILL semantics).

        Like a crash, the victim stays in the overlay and registered but
        refuses delivery -- the difference is that its in-memory state
        dies with the process.  A durable run loses nothing acknowledged
        (the journal outlives the process; under ``power_loss`` the
        un-fsynced log tail is torn too); a ``durability="none"`` run
        brings the node back empty, the baseline the matrix compares
        against.
        """
        candidates = [
            node
            for node in self.protocol.node_ids
            if node not in self._crashed_until
            and node not in self._restarting_until
        ]
        if not candidates:
            return
        victim = candidates[self._chaos_rng.randrange(len(candidates))]
        self.protocol.fail_node(victim)
        self.transport.fail_node(self.service.endpoint_name(victim))
        perf.counters.fault_restarts += 1
        self._restarts += 1
        if power_loss:
            perf.counters.fault_power_losses += 1
            self._power_losses += 1
        if self.walset is not None:
            if power_loss:
                self._wal_torn_bytes += self.walset.power_loss(victim)
            else:
                self.walset.kill(victim)
        self._restarting_until[victim] = (
            position + self.config.restart_downtime_queries,
            power_loss,
        )

    def _recover_restarted(self, node: int, power_loss: bool) -> None:
        """Restart a killed node: wipe RAM, replay the journal, repair.

        The store's in-memory copies are forgotten *without* journaling
        (the WAL is the state that survived the process), the cache
        starts cold, and -- when durable -- the node replays snapshot +
        log tail before delivery resumes.  The closing repair pass then
        restores whatever was acknowledged on other replicas while the
        node was down, exactly the rejoin path a real daemon runs.
        """
        self.index_store.forget_node(node)
        self.file_store.forget_node(node)
        cache = self.service.caches.get(node)
        if cache is not None:
            cache.clear()
        if self.walset is not None:
            started = time.perf_counter()
            durable = self.walset.recover(node)
            state = durable.state
            recovered = 0
            recovered_cache = 0
            durable.replaying = True
            try:
                recovered += self.index_store.replay_entries(
                    node, state.entries("index")
                )
                recovered += self.file_store.replay_entries(
                    node, state.entries("file")
                )
                if cache is not None:
                    for query_key, msd_keys in sorted(state.cache.items()):
                        for msd_key in msd_keys:
                            recovered_cache += int(
                                cache.insert(query_key, msd_key)
                            )
            finally:
                durable.replaying = False
            replay_ms = (time.perf_counter() - started) * 1000.0
            self._recovered_entries += recovered
            self._recovered_cache_entries += recovered_cache
            self._wal_records_replayed += durable.report.wal_records
            self._recovery_replay_ms += replay_ms
            if self.tracer is not None:
                self.tracer.node_recovery(
                    node=node,
                    power_loss=power_loss,
                    entries=recovered,
                    cache_entries=recovered_cache,
                    wal_records=durable.report.wal_records,
                    torn_bytes=durable.report.truncated_bytes,
                    replay_ms=replay_ms,
                )
        elif self.tracer is not None:
            self.tracer.node_recovery(
                node=node,
                power_loss=power_loss,
                entries=0,
                cache_entries=0,
                wal_records=0,
                torn_bytes=0,
                replay_ms=0.0,
            )
        if node in self.protocol:
            self.protocol.recover_node(node)
        self.transport.recover_node(self.service.endpoint_name(node))
        for store in (self.index_store, self.file_store):
            report = store.repair()
            self.repair_keys += report.keys_repaired
            self.repair_bytes += report.bytes_copied
        self._any_recovery = True

    def _process_recoveries(self, position: int) -> None:
        """Bring back crashed nodes whose downtime has elapsed; their
        stored state survived the crash, and a repair pass restores any
        replicas created elsewhere in the meantime to consistency."""
        due = [
            node
            for node, recover_at in self._crashed_until.items()
            if recover_at <= position
        ]
        for node in due:
            del self._crashed_until[node]
            if node in self.protocol:
                self.protocol.recover_node(node)
            self.transport.recover_node(self.service.endpoint_name(node))
        due_restarts = [
            node
            for node, (recover_at, _) in self._restarting_until.items()
            if recover_at <= position
        ]
        for node in due_restarts:
            _, power_loss = self._restarting_until.pop(node)
            self._recover_restarted(node, power_loss)

    def _average_dht_hops(self) -> float:
        """Mean substrate hops to resolve an index key, sampled post-hoc.

        The indexing layer's interaction counts are substrate-independent;
        this samples the routing cost underneath them for the ablation.
        """
        sample_keys = [
            hash_key(f"probe-{i}", self.config.bits) for i in range(200)
        ]
        hops = [self.protocol.lookup(key).hops for key in sample_keys]
        return sum(hops) / len(hops)
