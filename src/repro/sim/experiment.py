"""The experiment driver: build the stack, feed queries, measure.

One :class:`Experiment` reproduces one cell of the paper's evaluation
grid.  The construction mirrors the paper's layering exactly:

    substrate (ideal ring / Chord / Kademlia)
      -> DHT storage (index store + publication/file store)
        -> index service (scheme + cache policy)
          -> lookup engine (one simulated user population)

and the run sequentially feeds the configured number of generated
queries, collecting every measurement of Section V.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.scheme import IndexScheme, complex_scheme, flat_scheme, simple_scheme
from repro.core.service import IndexService
from repro.dht.base import DHTProtocol
from repro import perf
from repro.dht.can import CANNetwork
from repro.dht.chord import ChordNetwork
from repro.dht.idspace import hash_key
from repro.dht.kademlia import KademliaNetwork
from repro.dht.pastry import PastryNetwork
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.sim.metrics import ExperimentResult
from repro.storage.store import DHTStorage
from repro.workload.corpus import CorpusConfig, SyntheticCorpus
from repro.workload.querygen import QueryGenerator
from repro.workload.popularity import PowerLawPopularity

_SCHEME_BUILDERS = {
    "simple": simple_scheme,
    "flat": flat_scheme,
    "complex": complex_scheme,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """One cell of the evaluation grid.

    Defaults are the paper's setup: 500 nodes, 10,000 articles, 50,000
    queries over the ideal substrate.  ``cache`` is "none", "multi",
    "single", or "lruK" (e.g. "lru30").  ``shortcut_top_n`` adds
    permanent deep-link index entries (Section IV-C) for the N most
    popular articles from every entry index class -- 0 reproduces the
    paper, >0 drives the shortcut ablation.
    """

    scheme: str = "simple"
    cache: str = "none"
    substrate: str = "ideal"
    num_nodes: int = 500
    num_articles: int = 10_000
    num_queries: int = 50_000
    num_authors: int = 4_000
    bits: int = 64
    replication: int = 1
    corpus_seed: int = 2003
    query_seed: int = 42
    shortcut_top_n: int = 0
    #: Number of churn events spread uniformly across the query feed.
    #: Each event removes one random node (losing its cache) and joins a
    #: fresh one, then rebalances both stores -- the maintenance a
    #: DHash/PAST-class storage layer performs (Section III-A).
    churn_events: int = 0
    churn_seed: int = 7

    def __post_init__(self) -> None:
        if self.scheme not in _SCHEME_BUILDERS:
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.substrate not in ("ideal", "chord", "kademlia", "pastry", "can"):
            raise ValueError(f"unknown substrate {self.substrate!r}")
        CachePolicy.parse(self.cache)  # validates
        if self.num_nodes < 1 or self.num_articles < 1 or self.num_queries < 0:
            raise ValueError("sizes must be positive")

    def scaled(self, factor: float) -> "ExperimentConfig":
        """A proportionally smaller/larger copy (for quick tests)."""
        return replace(
            self,
            num_nodes=max(1, int(self.num_nodes * factor)),
            num_articles=max(1, int(self.num_articles * factor)),
            num_queries=max(0, int(self.num_queries * factor)),
            num_authors=max(1, int(self.num_authors * factor)),
        )


class Experiment:
    """Builds the full stack for a config and runs the query feed."""

    def __init__(
        self,
        config: ExperimentConfig,
        corpus: Optional[SyntheticCorpus] = None,
        scheme: Optional[IndexScheme] = None,
    ) -> None:
        """``corpus`` (and ``scheme``) may be shared across experiments
        with identical corpus parameters to avoid re-generation."""
        self.config = config
        self.corpus = corpus or SyntheticCorpus(
            CorpusConfig(
                num_articles=config.num_articles,
                num_authors=config.num_authors,
                seed=config.corpus_seed,
            )
        )
        if len(self.corpus) != config.num_articles:
            raise ValueError("shared corpus does not match the configuration")
        self.scheme = scheme or _SCHEME_BUILDERS[config.scheme](ARTICLE_SCHEMA)
        self.protocol = self._build_substrate()
        self.transport = SimulatedTransport()
        self.index_store = DHTStorage(
            self.protocol, replication=config.replication
        )
        self.file_store = DHTStorage(
            self.protocol, replication=config.replication
        )
        policy, capacity = CachePolicy.parse(config.cache)
        self.service = IndexService(
            ARTICLE_SCHEMA,
            self.scheme,
            self.index_store,
            self.file_store,
            self.transport,
            cache_policy=policy,
            cache_capacity=capacity,
        )
        self.engine = LookupEngine(self.service, user="user:0")
        self._populated = False
        self._dht_hops_total = 0
        self._dht_lookups = 0
        self._churn_rng = random.Random(config.churn_seed)
        self._join_counter = config.num_nodes
        self.churn_keys_moved = 0

    def _build_substrate(self) -> DHTProtocol:
        config = self.config
        node_ids = sorted(
            {hash_key(f"node-{i}", config.bits) for i in range(config.num_nodes)}
        )
        if len(node_ids) != config.num_nodes:
            raise RuntimeError("node id collision; increase bits")
        if config.substrate == "ideal":
            ring = IdealRing(config.bits)
            for node_id in node_ids:
                ring.add_node(node_id)
            return ring
        if config.substrate == "chord":
            return ChordNetwork.bulk_build(node_ids, bits=config.bits)
        if config.substrate == "kademlia":
            return KademliaNetwork.bulk_build(node_ids, bits=config.bits)
        if config.substrate == "pastry":
            return PastryNetwork.bulk_build(node_ids, bits=config.bits)
        return CANNetwork.bulk_build(node_ids, bits=config.bits)

    # -- population --------------------------------------------------------------

    def populate(self) -> None:
        """Insert every corpus record (files + index entries)."""
        if self._populated:
            return
        for record in self.corpus.records:
            self.service.insert_record(record)
        if self.config.shortcut_top_n:
            entry_classes = self.scheme.entry_classes()
            top = self.corpus.records[: self.config.shortcut_top_n]
            for record in top:
                for keyset in entry_classes:
                    self.service.insert_shortcut_mapping(record, keyset)
        self._populated = True

    # -- run ----------------------------------------------------------------------

    def run(self) -> ExperimentResult:
        """Populate, feed the query workload, and collect every metric."""
        started = time.monotonic()
        perf_before = perf.snapshot()
        self.populate()
        config = self.config
        result = ExperimentResult(
            scheme=config.scheme,
            cache=config.cache,
            substrate=config.substrate,
            num_nodes=config.num_nodes,
            num_articles=config.num_articles,
            num_queries=config.num_queries,
        )
        result.index_storage_bytes = self.service.index_storage_bytes()
        result.article_bytes = self.corpus.total_article_bytes()

        generator = QueryGenerator(
            self.corpus,
            PowerLawPopularity.for_population(len(self.corpus)),
            seed=config.query_seed,
        )
        churn_positions: set[int] = set()
        if config.churn_events:
            stride = max(1, config.num_queries // (config.churn_events + 1))
            churn_positions = {
                stride * (event + 1) for event in range(config.churn_events)
            }

        meter = self.transport.meter
        for position, workload_query in enumerate(
            generator.generate(config.num_queries)
        ):
            if position in churn_positions:
                self._churn_event()
            trace = self.engine.search(workload_query.query, workload_query.target)
            meter.end_query()
            result.searches += 1
            result.found += int(trace.found)
            result.total_interactions += trace.interactions
            if trace.errors:
                result.nonindexed_queries += 1
                result.total_error_interactions += trace.errors
            if trace.cache_hit:
                result.cache_hits += 1
            if trace.first_contact_hit:
                result.first_contact_hits += 1
            self._dht_hops_total += sum(
                1 for _ in trace.visited
            )  # interactions resolve one key each
        self._collect(result)
        result.perf_counters = perf.delta(perf_before, perf.snapshot())
        result.runtime_seconds = time.monotonic() - started
        return result

    def _collect(self, result: ExperimentResult) -> None:
        queries = max(1, result.searches)
        result.avg_interactions = result.total_interactions / queries
        meter = self.transport.meter
        result.normal_bytes_total = meter.normal_bytes
        result.cache_bytes_total = meter.cache_bytes
        result.normal_bytes_per_query = meter.normal_bytes / queries
        result.cache_bytes_per_query = meter.cache_bytes / queries
        result.hit_ratio = result.cache_hits / queries
        if result.cache_hits:
            result.first_contact_hit_share = (
                result.first_contact_hits / result.cache_hits
            )

        cache_sizes = list(self.service.cache_sizes().values())
        if cache_sizes:
            result.avg_cached_keys_per_node = sum(cache_sizes) / len(cache_sizes)
            result.max_cached_keys = max(cache_sizes)
        empty, full, total = self.service.cache_occupancy()
        if total:
            result.caches_empty_fraction = empty / total
            result.caches_full_fraction = full / total

        index_keys = list(self.service.index_keys_per_node().values())
        if index_keys:
            result.avg_index_keys_per_node = sum(index_keys) / len(index_keys)

        counts = meter.query_counts_by_node()
        percentages = sorted(
            (100.0 * count / queries for count in counts.values()), reverse=True
        )
        result.node_query_percentages = percentages

        result.avg_dht_hops = self._average_dht_hops()

    def _churn_event(self) -> None:
        """One membership change: a random leave, a fresh join, repair."""
        victims = self.protocol.node_ids
        victim = victims[self._churn_rng.randrange(len(victims))]
        self.protocol.remove_node(victim)
        self.service.unregister_node(victim)
        while True:
            self._join_counter += 1
            joiner = hash_key(f"node-{self._join_counter}", self.config.bits)
            if joiner not in self.protocol:
                break
        self.protocol.add_node(joiner)
        self.service.register_nodes()
        self.churn_keys_moved += self.index_store.rebalance()
        self.churn_keys_moved += self.file_store.rebalance()

    def _average_dht_hops(self) -> float:
        """Mean substrate hops to resolve an index key, sampled post-hoc.

        The indexing layer's interaction counts are substrate-independent;
        this samples the routing cost underneath them for the ablation.
        """
        sample_keys = [
            hash_key(f"probe-{i}", self.config.bits) for i in range(200)
        ]
        hops = [self.protocol.lookup(key).hops for key in sample_keys]
        return sum(hops) / len(hops)
