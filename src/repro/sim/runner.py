"""Memoizing experiment runner shared by the benchmark harness.

Several figures read different columns of the same (scheme, cache) grid
cell; :func:`run_cached` computes each cell once per process and shares
the corpus object across cells with identical corpus parameters, so the
whole harness costs one pass over the grid.
"""

from __future__ import annotations

from repro.sim.experiment import Experiment, ExperimentConfig
from repro.sim.metrics import ExperimentResult
from repro.workload.corpus import CorpusConfig, SyntheticCorpus

_results: dict[ExperimentConfig, ExperimentResult] = {}
_corpora: dict[tuple[int, int, int], SyntheticCorpus] = {}


def _shared_corpus(config: ExperimentConfig) -> SyntheticCorpus:
    key = (config.num_articles, config.num_authors, config.corpus_seed)
    corpus = _corpora.get(key)
    if corpus is None:
        corpus = SyntheticCorpus(
            CorpusConfig(
                num_articles=config.num_articles,
                num_authors=config.num_authors,
                seed=config.corpus_seed,
            )
        )
        _corpora[key] = corpus
    return corpus


def run_cached(config: ExperimentConfig) -> ExperimentResult:
    """Run (or recall) the experiment for a grid cell."""
    result = _results.get(config)
    if result is None:
        experiment = Experiment(config, corpus=_shared_corpus(config))
        result = experiment.run()
        _results[config] = result
    return result


def cached_cells() -> list[ExperimentConfig]:
    """Configurations computed so far (for reporting)."""
    return list(_results)


def clear_cache() -> None:
    """Drop memoized results and corpora (tests use this for isolation)."""
    _results.clear()
    _corpora.clear()
