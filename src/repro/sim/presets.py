"""Parameter presets: the paper's grid and smaller smoke variants.

Every named cell of the evaluation lives in the :data:`PRESETS`
registry -- one resolution path for the CLI (``--preset``), the test
suite, and CI, instead of each caller keeping its own name->config
dict.  The module-level ``*_CONFIG`` constants remain as aliases for
direct imports.
"""

from __future__ import annotations

from dataclasses import replace

from repro.sim.experiment import ExperimentConfig

#: The preset registry: name -> configuration.  Populated by
#: :func:`register_preset` as each cell below is defined.
PRESETS: dict[str, ExperimentConfig] = {}


def register_preset(name: str, config: ExperimentConfig) -> ExperimentConfig:
    """Register a named cell; returns the config for alias assignment."""
    if name in PRESETS:
        raise ValueError(f"duplicate preset name {name!r}")
    PRESETS[name] = config
    return config


def get_preset(name: str) -> ExperimentConfig:
    """Resolve a preset by name, with a listing on failure."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {', '.join(preset_names())}"
        ) from None


def preset_names() -> list[str]:
    """Registered preset names, sorted for stable CLI listings."""
    return sorted(PRESETS)


#: The three indexing schemes of Figure 8, in the paper's S/F/C order.
SCHEMES: tuple[str, ...] = ("simple", "flat", "complex")

#: Cache policies on the x-axis of Figure 11 (multi-cache omitted there
#: because "it presents the same characteristics as the single-cache").
CACHE_POLICIES_FIG11: tuple[str, ...] = (
    "none",
    "single",
    "lru10",
    "lru20",
    "lru30",
)

#: Cache policies on the x-axis of Figure 12 (incl. multi-cache).
CACHE_POLICIES_FIG12: tuple[str, ...] = (
    "none",
    "multi",
    "single",
    "lru10",
    "lru20",
    "lru30",
)

#: Cache policies on the x-axes of Figures 13 and 14 (cacheful only).
CACHE_POLICIES_CACHED: tuple[str, ...] = (
    "multi",
    "single",
    "lru10",
    "lru20",
    "lru30",
)

#: The paper's setup (Section V-E): 500 nodes, 10,000 articles, 50,000
#: sequential queries.
PAPER_CONFIG = register_preset("paper", ExperimentConfig())

#: A proportionally reduced configuration for fast tests.
SMOKE_CONFIG = register_preset(
    "smoke",
    ExperimentConfig(
        num_nodes=50,
        num_articles=500,
        num_queries=2_000,
        num_authors=200,
    ),
)

#: The churn/availability experiment: the paper's 50,000-query feed under
#: a seeded chaos plan -- 5% message drop, Poisson join/leave churning 10%
#: of the 500-node population, plus transient crash windows -- with
#: replication 3 so retries and replica failover can carry the load.  The
#: acceptance bar is >= 95% lookup success (measured well above that).
CHURN_CONFIG = register_preset(
    "churn",
    replace(
        PAPER_CONFIG,
        cache="single",
        replication=3,
        churn_events=50,
        churn_mode="poisson",
        fault_drop_probability=0.05,
        crash_events=10,
        crash_downtime_queries=500,
    ),
)

#: The response-time experiment: the churn cell driven by 16 concurrent
#: users on the virtual-time event kernel, with seeded per-pair link
#: latencies, so p50/p95/p99 lookup response times become measurable
#: under the same failure load.
CONCURRENT_CONFIG = register_preset(
    "concurrent",
    replace(
        CHURN_CONFIG,
        concurrency=16,
        latency_model="uniform:10:100",
    ),
)

#: The web-scale stress cell: 10^5 nodes and 10^6 queries -- two orders
#: of magnitude past the paper -- driven closed-loop by 10,000 users on
#: the virtual clock.  "auto" resolves to the timing-wheel scheduler and
#: the constant-memory quantile sketch at this query count, which is
#: what makes the run finish in minutes with bounded memory.  Fewer
#: authors per article and a fatter corpus keep the index realistic at
#: scale; replication stays 1 (the routing and indexing layers are the
#: subject, not durability).
WEB_SCALE_CONFIG = register_preset(
    "web-scale",
    ExperimentConfig(
        num_nodes=100_000,
        num_articles=20_000,
        num_queries=1_000_000,
        num_authors=8_000,
        concurrency=10_000,
        latency_model="uniform:10:100",
    ),
)

#: A proportionally reduced web-scale cell for CI: same machinery
#: (wheel scheduler, sketch metrics, 100 concurrent users) at a size
#: that finishes in seconds.  scheduler/metrics are forced because the
#: reduced query count would resolve "auto" back to the paper-scale
#: machinery.
WEB_SCALE_SMOKE_CONFIG = register_preset(
    "web-scale-smoke",
    ExperimentConfig(
        num_nodes=2_000,
        num_articles=1_000,
        num_queries=5_000,
        num_authors=400,
        concurrency=100,
        latency_model="uniform:10:100",
        scheduler="wheel",
        metrics="sketch",
    ),
)

#: The restart/power-loss chaos experiment (the durability matrix):
#: durable (WAL + snapshot) nodes under a lossy network and a rolling
#: schedule of 6 process kills plus 2 power losses, each node down for
#: 300 queries before it restarts, replays its journal, and rejoins via
#: repair.  Replication 3 carries the load during the outage windows;
#: the acceptance bar is >= 99% post-restart lookup success (a
#: ``durability="none"`` copy of this cell is the lost-state baseline).
RESTART_CHAOS_CONFIG = register_preset(
    "restart-chaos",
    ExperimentConfig(
        cache="single",
        replication=3,
        num_nodes=100,
        num_articles=2_000,
        num_queries=10_000,
        num_authors=800,
        fault_drop_probability=0.01,
        restart_events=6,
        restart_downtime_queries=300,
        power_loss_events=2,
        durability="wal",
        fsync="interval:32",
    ),
)

#: A proportionally reduced restart-chaos cell for fast tests: same
#: machinery (durable journals, one power loss) in a few seconds.
RESTART_CHAOS_SMOKE_CONFIG = register_preset(
    "restart-chaos-smoke",
    replace(
        RESTART_CHAOS_CONFIG,
        num_nodes=30,
        num_articles=300,
        num_queries=1_500,
        num_authors=120,
        restart_events=2,
        restart_downtime_queries=150,
        power_loss_events=1,
    ),
)

#: The predicate-query experiment: half the workload loosened into
#: prefix/wildcard/year-range queries, resolved through the
#: trie-over-DHT index.  The driver (``python -m repro.sim --preset
#: range-queries``) runs this cell head-to-head against an
#: ``index_structure="chains"`` copy (the paper's generalization /
#: specialization fallback) and reports interactions/query and traffic
#: for both, recorded in EXPERIMENTS.md and BENCH_query.json.
RANGE_QUERIES_CONFIG = register_preset(
    "range-queries",
    ExperimentConfig(
        num_nodes=200,
        num_articles=5_000,
        num_queries=20_000,
        num_authors=2_000,
        predicate_mix=0.5,
        index_structure="trie",
    ),
)

#: A proportionally reduced predicate-query cell for CI smoke runs.
RANGE_QUERIES_SMOKE_CONFIG = register_preset(
    "range-queries-smoke",
    replace(
        RANGE_QUERIES_CONFIG,
        num_nodes=50,
        num_articles=500,
        num_queries=2_000,
        num_authors=200,
    ),
)

#: A proportionally reduced chaos cell for fast tests.
CHURN_SMOKE_CONFIG = register_preset(
    "churn-smoke",
    replace(
        CHURN_CONFIG,
        num_nodes=50,
        num_articles=500,
        num_queries=2_000,
        num_authors=200,
        churn_events=5,
        crash_events=2,
        crash_downtime_queries=100,
    ),
)

#: The adversarial experiment ("lookups under attack"): 10% of a
#: 300-node population poisons index answers, 5% forges referrals, 20
#: Sybils flood in over the feed, and 6 honest nodes are eclipsed --
#: on top of a mildly lossy network, with replication 3 and the single
#: cache.  The driver (``python -m repro.sim --preset adversarial``)
#: runs the cell twice, verification off (the undefended baseline,
#: measuring the poisoned-result rate) and on (signed frames + trust
#: ledger, measuring recovery), and records both in BENCH_sec.json.
ADVERSARIAL_CONFIG = register_preset(
    "adversarial",
    ExperimentConfig(
        cache="single",
        replication=3,
        num_nodes=300,
        num_articles=3_000,
        num_queries=15_000,
        num_authors=1_200,
        fault_drop_probability=0.01,
        churn_seed=11,
        adversary_poisoners=30,
        adversary_liars=15,
        adversary_sybil_joins=20,
        adversary_eclipse_victims=6,
    ),
)

#: A proportionally reduced adversarial cell for CI smoke runs (same
#: attacker mix at roughly one-fifth scale).
ADVERSARIAL_SMOKE_CONFIG = register_preset(
    "adversarial-smoke",
    replace(
        ADVERSARIAL_CONFIG,
        num_nodes=60,
        num_articles=600,
        num_queries=3_000,
        num_authors=240,
        adversary_poisoners=6,
        adversary_liars=3,
        adversary_sybil_joins=4,
        adversary_eclipse_victims=2,
    ),
)


def paper_grid(
    schemes: tuple[str, ...] = SCHEMES,
    caches: tuple[str, ...] = CACHE_POLICIES_FIG12,
    base: ExperimentConfig = PAPER_CONFIG,
) -> list[ExperimentConfig]:
    """Every (scheme, cache) cell of the evaluation grid."""
    return [
        replace(base, scheme=scheme, cache=cache)
        for scheme in schemes
        for cache in caches
    ]
