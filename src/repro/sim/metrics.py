"""The experiment result record: every measurement the figures need."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """Aggregated outcome of one simulation run.

    One instance corresponds to one (scheme, cache policy) cell of the
    paper's evaluation grid; the figures each read a subset of fields:

    ====================  =====================================================
    Figure / Table         Fields
    ====================  =====================================================
    Fig 11                 ``avg_interactions``
    Fig 12                 ``normal_bytes_per_query``, ``cache_bytes_per_query``
    Fig 13                 ``hit_ratio``, ``first_contact_hit_share``
    Fig 14                 ``avg_cached_keys_per_node``, ``max_cached_keys``,
                           ``caches_full_fraction``, ``caches_empty_fraction``,
                           ``avg_index_keys_per_node``
    Fig 15                 ``node_query_percentages``
    Table I                ``nonindexed_queries``
    Section V-B            ``index_storage_bytes``, ``article_bytes``
    Substrate ablation     ``avg_dht_hops``
    ====================  =====================================================
    """

    scheme: str
    cache: str
    substrate: str
    num_nodes: int
    num_articles: int
    num_queries: int

    # Simulation mode (virtual-time kernel runs; sequential mode keeps
    # the defaults and all response-time fields at zero).
    concurrency: int = 1
    latency_model: str = "zero"

    # Per-query response time on the virtual clock (kernel mode only).
    response_time_ms_mean: float = 0.0
    response_time_ms_p50: float = 0.0
    response_time_ms_p95: float = 0.0
    response_time_ms_p99: float = 0.0
    #: Virtual time at which the last event of the run fired (the
    #: makespan of the whole feed on the simulated clock).
    virtual_time_ms: float = 0.0

    # Search outcomes
    searches: int = 0
    found: int = 0
    avg_interactions: float = 0.0
    total_interactions: int = 0
    #: Searches whose query carried at least one non-exact predicate
    #: (prefix / wildcard / range); 0 for exact-only workloads.
    predicate_queries: int = 0

    # Errors (Table I)
    nonindexed_queries: int = 0        # searches that hit >= 1 recoverable error
    total_error_interactions: int = 0  # wasted interactions across all searches

    # Traffic (Fig 12)
    normal_bytes_total: int = 0
    cache_bytes_total: int = 0
    normal_bytes_per_query: float = 0.0
    cache_bytes_per_query: float = 0.0

    # Cache effectiveness (Fig 13)
    cache_hits: int = 0
    first_contact_hits: int = 0
    hit_ratio: float = 0.0
    first_contact_hit_share: float = 0.0

    # Cache storage (Fig 14)
    avg_cached_keys_per_node: float = 0.0
    max_cached_keys: int = 0
    caches_full_fraction: float = 0.0
    caches_empty_fraction: float = 0.0

    # Regular index storage (Fig 14 text + Section V-B)
    avg_index_keys_per_node: float = 0.0
    index_storage_bytes: int = 0
    article_bytes: int = 0

    # Hot-spots (Fig 15): % of queries that touched each node, descending.
    node_query_percentages: list[float] = field(default_factory=list)

    # Substrate ablation
    avg_dht_hops: float = 0.0

    # Availability under faults and churn (chaos runs).  All zero on a
    # reliable network, so the failure-free figures are untouched.
    success_rate: float = 0.0          # found / searches
    total_retries: int = 0             # re-sent exchanges across all lookups
    retries_per_lookup: float = 0.0
    total_failed_sends: int = 0        # exchanges that raised DeliveryError
    lookups_gave_up: int = 0           # searches abandoned on delivery failure
    fault_drops: int = 0               # injected message losses
    fault_duplicates: int = 0          # injected duplicate deliveries
    fault_crashed_sends: int = 0       # sends refused by crashed nodes
    fault_latency_ms: float = 0.0      # injected latency, in virtual ms
    service_failovers: int = 0         # requests redirected to a replica
    storage_failovers: int = 0         # reads skipping a dead replica
    repair_keys: int = 0               # keys re-replicated by churn repair
    repair_bytes: int = 0              # repair traffic (bytes copied)

    # Restart / power-loss chaos (durability runs).  All zero unless the
    # config schedules restart_events / power_loss_events.
    restarts: int = 0                  # process kills (incl. power losses)
    power_losses: int = 0              # kills that also tore the WAL tail
    recovered_entries: int = 0         # index+file entries replayed back
    recovered_cache_entries: int = 0   # cache shortcuts replayed back
    wal_records_replayed: int = 0      # WAL records applied at recovery
    wal_torn_bytes: int = 0            # bytes destroyed by power losses
    recovery_replay_ms: float = 0.0    # wall time spent replaying (total)
    post_restart_searches: int = 0     # lookups issued after 1st recovery
    post_restart_found: int = 0
    post_restart_success_rate: float = 0.0

    # Adversarial (Byzantine) runs -- see repro.net.adversary and
    # repro.sec.  All zero unless the config plants an adversary or
    # switches signature verification on.
    adversarial_nodes: int = 0         # poisoners + liars + marked Sybils
    sybil_joins: int = 0               # adversary-controlled joins executed
    eclipsed_nodes: int = 0            # victims whose lookups get dropped
    poisoned_results: int = 0          # forged file fetches delivered
    poisoned_result_rate: float = 0.0  # poisoned_results / searches
    forged_answers: int = 0            # fabricated index answers delivered
    verify_failures: int = 0           # forgeries caught by verification
    contradictions: int = 0            # withheld answers another replica held
    eclipse_drops: int = 0             # lookup messages eaten by eclipses
    low_trust_peers: int = 0           # peers below the trust threshold

    runtime_seconds: float = 0.0

    # Hot-path perf counters accumulated during this run (the increments
    # of repro.perf.counters between run start and end): parses,
    # normalizations, covering checks, cache hits/misses, ...
    perf_counters: dict[str, int] = field(default_factory=dict)

    def perf_hit_rate(self, operation: str) -> float:
        """Cache hit rate of one counted operation during this run.

        ``operation`` is the counter prefix, e.g. ``"normalize"`` or
        ``"field_parse"``; returns 0.0 when the operation never ran.
        """
        hits = self.perf_counters.get(f"{operation}_cache_hits", 0)
        misses = self.perf_counters.get(f"{operation}_cache_misses", 0)
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def busiest_node_share(self) -> float:
        """Fraction of queries hitting the single busiest node (Fig 15)."""
        if not self.node_query_percentages:
            return 0.0
        return self.node_query_percentages[0] / 100.0

    @property
    def total_bytes_per_query(self) -> float:
        return self.normal_bytes_per_query + self.cache_bytes_per_query

    def label(self) -> str:
        """Compact scheme/cache/substrate identifier of the cell."""
        return f"{self.scheme}/{self.cache}/{self.substrate}"

    def summary_row(self) -> list[object]:
        """Compact row for multi-cell comparison tables."""
        return [
            self.scheme,
            self.cache,
            round(self.avg_interactions, 3),
            int(self.normal_bytes_per_query),
            int(self.cache_bytes_per_query),
            round(self.hit_ratio * 100, 1),
            round(self.avg_cached_keys_per_node, 1),
            self.nonindexed_queries,
        ]

    SUMMARY_HEADERS = [
        "scheme",
        "cache",
        "interactions",
        "normal B/q",
        "cache B/q",
        "hit %",
        "cached keys/node",
        "errors",
    ]

    def response_time_rows(self) -> list[list[object]]:
        """The latency report of a virtual-time run (label/value rows)."""
        return [
            ["concurrency", self.concurrency],
            ["latency model", self.latency_model],
            ["response time p50", f"{self.response_time_ms_p50:,.1f} ms"],
            ["response time p95", f"{self.response_time_ms_p95:,.1f} ms"],
            ["response time p99", f"{self.response_time_ms_p99:,.1f} ms"],
            ["response time mean", f"{self.response_time_ms_mean:,.1f} ms"],
            ["virtual makespan", f"{self.virtual_time_ms:,.1f} ms"],
        ]

    def availability_rows(self) -> list[list[object]]:
        """The availability report of a chaos run (label/value rows)."""
        return [
            ["lookup success rate", f"{100 * self.success_rate:.2f}%"],
            ["lookups that gave up", self.lookups_gave_up],
            ["retries / lookup", round(self.retries_per_lookup, 4)],
            ["failed sends", self.total_failed_sends],
            ["replica failovers (service, storage)",
             f"{self.service_failovers}, {self.storage_failovers}"],
            ["injected drops / duplicates", f"{self.fault_drops} / "
             f"{self.fault_duplicates}"],
            ["sends refused by crashed nodes", self.fault_crashed_sends],
            ["injected latency", f"{self.fault_latency_ms:,.0f} ms"],
            ["keys re-replicated by repair", self.repair_keys],
            ["repair traffic", f"{self.repair_bytes:,} B"],
        ] + self.restart_rows() + self.adversarial_rows()

    def restart_rows(self) -> list[list[object]]:
        """Restart-chaos rows; empty unless restarts happened, so the
        pre-durability availability reports are byte-identical."""
        if not self.restarts:
            return []
        return [
            ["restarts (of which power losses)",
             f"{self.restarts} ({self.power_losses})"],
            ["entries recovered from WAL+snapshot",
             f"{self.recovered_entries} "
             f"(+{self.recovered_cache_entries} cached shortcuts)"],
            ["WAL records replayed", self.wal_records_replayed],
            ["WAL bytes torn by power loss", self.wal_torn_bytes],
            ["recovery replay time", f"{self.recovery_replay_ms:.1f} ms"],
            ["post-restart lookup success",
             f"{100 * self.post_restart_success_rate:.2f}% "
             f"({self.post_restart_found}/{self.post_restart_searches})"],
        ]

    def adversarial_rows(self) -> list[list[object]]:
        """Adversarial-run rows; empty on a benign run, so the earlier
        availability reports are byte-identical."""
        if not (self.adversarial_nodes or self.eclipsed_nodes):
            return []
        return [
            ["adversarial nodes (of which Sybil joins)",
             f"{self.adversarial_nodes} ({self.sybil_joins})"],
            ["eclipsed nodes", self.eclipsed_nodes],
            ["forged index answers delivered", self.forged_answers],
            ["poisoned file results",
             f"{self.poisoned_results} "
             f"({100 * self.poisoned_result_rate:.2f}% of lookups)"],
            ["forgeries caught by verification", self.verify_failures],
            ["withheld answers contradicted", self.contradictions],
            ["lookups eaten by eclipse sets", self.eclipse_drops],
            ["peers below trust threshold", self.low_trust_peers],
        ]

    def validate(self) -> None:
        """Internal consistency checks (used by tests)."""
        if self.found > self.searches:
            raise ValueError("found more searches than issued")
        if self.cache == "none" and (self.cache_hits or self.cache_bytes_total):
            raise ValueError("cache activity recorded without a cache policy")
        if not 0.0 <= self.hit_ratio <= 1.0:
            raise ValueError("hit ratio outside [0, 1]")
        if not 0.0 <= self.success_rate <= 1.0:
            raise ValueError("success rate outside [0, 1]")
        if self.lookups_gave_up > self.searches:
            raise ValueError("more abandoned lookups than searches")
        if not 0.0 <= self.poisoned_result_rate <= 1.0:
            raise ValueError("poisoned-result rate outside [0, 1]")
        if self.poisoned_results and self.verify_failures:
            # Forgery is either delivered (verify off) or caught (on);
            # a run recording both means the transport double-counted.
            raise ValueError("poisoned results recorded despite verification")
