"""Simulation harness: the paper's experimental setup (Section V-E).

"Our experiments simulate a P2P network of 500 nodes, on top of which a
distributed bibliographic database storing 10,000 articles is
implemented.  ...  Each simulation consists of sequentially feeding the
indexing network with 50,000 queries from our query generator."

- :mod:`repro.sim.experiment` -- configuration and the experiment driver
  (build substrate -> storage -> index service -> feed queries);
- :mod:`repro.sim.kernel` -- the discrete-event kernel (virtual clock)
  that concurrent-mode runs schedule message deliveries and retry
  backoff timers on;
- :mod:`repro.sim.metrics` -- the result record with every measurement
  the paper's figures report;
- :mod:`repro.sim.runner` -- a memoizing runner so the many benches that
  share a grid cell (scheme x cache policy) compute it once;
- :mod:`repro.sim.presets` -- the paper's parameter grid and smaller
  smoke-test presets.
"""

from repro.sim.experiment import Experiment, ExperimentConfig
from repro.sim.kernel import EventKernel, KernelError
from repro.sim.metrics import ExperimentResult
from repro.sim.presets import (
    CACHE_POLICIES_FIG11,
    CACHE_POLICIES_FIG12,
    CHURN_CONFIG,
    CHURN_SMOKE_CONFIG,
    CONCURRENT_CONFIG,
    PAPER_CONFIG,
    RESTART_CHAOS_CONFIG,
    RESTART_CHAOS_SMOKE_CONFIG,
    SCHEMES,
    SMOKE_CONFIG,
    paper_grid,
)
from repro.sim.runner import clear_cache, run_cached

__all__ = [
    "Experiment",
    "ExperimentConfig",
    "ExperimentResult",
    "EventKernel",
    "KernelError",
    "clear_cache",
    "run_cached",
    "CACHE_POLICIES_FIG11",
    "CACHE_POLICIES_FIG12",
    "CHURN_CONFIG",
    "CHURN_SMOKE_CONFIG",
    "CONCURRENT_CONFIG",
    "PAPER_CONFIG",
    "RESTART_CHAOS_CONFIG",
    "RESTART_CHAOS_SMOKE_CONFIG",
    "SCHEMES",
    "SMOKE_CONFIG",
    "paper_grid",
]
