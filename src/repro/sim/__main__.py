"""Command-line experiment runner: ``python -m repro.sim [options]``.

Runs one grid cell of the paper's evaluation and prints the measured
metrics, e.g.::

    python -m repro.sim --scheme flat --cache lru30 --queries 10000
    python -m repro.sim --substrate chord --nodes 200 --scale 0.2
    python -m repro.sim --preset churn --scale 0.1
    python -m repro.sim --concurrency 16 --latency-model uniform:10:100

``--scale`` proportionally shrinks the paper's full setup (500 nodes,
10,000 articles, 50,000 queries) for quick explorations.  ``--preset
churn`` runs the availability experiment -- seeded message loss, Poisson
join/leave churn, and transient crashes -- and the report then includes
the availability table (success rate, retries, failovers, repair cost).
``--concurrency`` / ``--latency-model`` switch the run onto the
virtual-time event kernel (overlapping lookups, real latency
accounting) and add p50/p95/p99 response times to the report; the
``concurrent`` preset combines that with the churn cell.  ``--preset
restart-chaos`` runs the durability matrix -- WAL-journaled nodes under
rolling process kills and power losses -- and the availability table
then gains recovered-entry counts, replay time, and the post-restart
lookup success rate (compare against ``--durability none``).
``--preset range-queries`` runs the predicate-query head-to-head: one
cell resolving prefix/wildcard/range queries through the trie-over-DHT
index, one through the paper's generalization/specialization fallback,
with a comparison table and an optional ``--bench-out`` JSON record.
``--preset adversarial`` runs the security head-to-head: the same
Byzantine population (index poisoners, lying routers, a Sybil flood,
eclipse sets) once with signature verification off -- the undefended
baseline, measuring the poisoned-result rate -- and once with signed
frames plus the trust ledger on, measuring recovery; ``--bench-out``
appends the comparison to a BENCH_sec.json trajectory file.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from repro.analysis.tables import format_table
from repro.sim.experiment import Experiment, ExperimentConfig
from repro.sim.metrics import ExperimentResult
from repro.sim.presets import get_preset, preset_names

#: Presets that run as a two-cell comparison (trie vs covering chains).
_COMPARISON_PRESETS = {"range-queries", "range-queries-smoke"}

#: Presets that run as a security comparison (verification off vs on).
_SEC_PRESETS = {"adversarial", "adversarial-smoke"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description=(
            "Run one cell of the ICDCS'04 data-indexing evaluation grid."
        ),
    )
    parser.add_argument(
        "--scheme", choices=("simple", "flat", "complex"), default=None
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="none | multi | single | lruK (e.g. lru30)",
    )
    parser.add_argument(
        "--substrate",
        choices=("ideal", "chord", "kademlia", "pastry", "can"),
        default=None,
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--articles", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--authors", type=int, default=None)
    parser.add_argument("--bits", type=int, default=None)
    parser.add_argument("--replication", type=int, default=None)
    parser.add_argument("--corpus-seed", type=int, default=None)
    parser.add_argument("--query-seed", type=int, default=None)
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="shrink/grow the paper setup proportionally (e.g. 0.1)",
    )
    parser.add_argument(
        "--shortcut-top-n",
        type=int,
        default=None,
        help="add permanent deep links for the N most popular articles",
    )
    parser.add_argument(
        "--preset",
        choices=preset_names(),
        default=None,
        help="start from a named configuration (flags still override)",
    )
    kernel = parser.add_argument_group("virtual-time kernel")
    kernel.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help="number of concurrent users (>1 runs on the event kernel)",
    )
    kernel.add_argument(
        "--latency-model",
        default=None,
        help="zero | constant[:MS] | uniform[:LOW:HIGH] (virtual ms)",
    )
    kernel.add_argument(
        "--arrival-interval-ms",
        type=float,
        default=None,
        help="open-loop Poisson mean inter-arrival gap (0 = closed loop)",
    )
    kernel.add_argument(
        "--scheduler",
        choices=("auto", "heap", "wheel"),
        default=None,
        help=(
            "event-kernel scheduler: binary heap or calendar-queue "
            "timing wheel (auto: wheel at web scale); the choice "
            "changes throughput only, never any measured number"
        ),
    )
    kernel.add_argument(
        "--metrics",
        choices=("auto", "exact", "sketch"),
        default=None,
        help=(
            "response-time collector: exact percentiles or a "
            "constant-memory <1%%-error sketch (auto: sketch at "
            "web scale)"
        ),
    )
    chaos = parser.add_argument_group("failure model")
    chaos.add_argument(
        "--drop-probability",
        type=float,
        default=None,
        help="per-message loss probability (seeded, deterministic)",
    )
    chaos.add_argument(
        "--duplicate-probability",
        type=float,
        default=None,
        help="per-exchange duplicate-delivery probability",
    )
    chaos.add_argument(
        "--latency-ms",
        type=float,
        default=None,
        help="max added latency per delivered message, in virtual ms",
    )
    chaos.add_argument(
        "--latency-ticks",
        type=int,
        default=None,
        help="deprecated alias of --latency-ms (1 tick = 1 ms)",
    )
    chaos.add_argument(
        "--churn-events",
        type=int,
        default=None,
        help="join/leave events over the feed (with incremental repair)",
    )
    chaos.add_argument(
        "--churn-mode",
        choices=("uniform", "poisson"),
        default=None,
        help="how churn events are placed over the feed",
    )
    chaos.add_argument(
        "--crash-events",
        type=int,
        default=None,
        help="transient node crashes over the feed",
    )
    chaos.add_argument(
        "--crash-downtime",
        type=int,
        default=None,
        help="crash window length, in queries",
    )
    chaos.add_argument(
        "--churn-seed",
        type=int,
        default=None,
        help="seed of the single RNG driving churn, crashes, and faults",
    )
    durability = parser.add_argument_group("durability / restart chaos")
    durability.add_argument(
        "--restart-events",
        type=int,
        default=None,
        help="process kills (SIGKILL semantics) over the feed",
    )
    durability.add_argument(
        "--restart-downtime",
        type=int,
        default=None,
        help="restart outage window length, in queries",
    )
    durability.add_argument(
        "--power-loss-events",
        type=int,
        default=None,
        help="additional kills that also tear the un-fsynced WAL tail",
    )
    durability.add_argument(
        "--durability",
        choices=("none", "wal"),
        default=None,
        help="node-state persistence: in-memory only, or WAL + snapshot",
    )
    durability.add_argument(
        "--fsync",
        default=None,
        metavar="POLICY",
        help="WAL sync policy: always | interval[:N] | never",
    )
    durability.add_argument(
        "--data-dir",
        default=None,
        metavar="PATH",
        help="root for the per-node journals (default: temporary dir)",
    )
    predicates = parser.add_argument_group("predicate queries")
    predicates.add_argument(
        "--predicate-mix",
        type=float,
        default=None,
        help="fraction of queries loosened into prefix/wildcard/range",
    )
    predicates.add_argument(
        "--index-structure",
        choices=("chains", "trie"),
        default=None,
        help="how predicate queries resolve: covering chains or trie",
    )
    predicates.add_argument(
        "--bench-out",
        metavar="PATH",
        default=None,
        help=(
            "append the range-queries comparison record to a "
            "BENCH_query.json trajectory file"
        ),
    )
    adversary = parser.add_argument_group("adversarial model")
    adversary.add_argument(
        "--poisoners",
        type=int,
        default=None,
        help="nodes answering lookups with fabricated index entries",
    )
    adversary.add_argument(
        "--liars",
        type=int,
        default=None,
        help="nodes forging shortcut referrals to nonexistent keys",
    )
    adversary.add_argument(
        "--sybil-joins",
        type=int,
        default=None,
        help="adversary-controlled joins flooded in over the feed",
    )
    adversary.add_argument(
        "--eclipse-victims",
        type=int,
        default=None,
        help="honest nodes whose lookup traffic the adversary drops",
    )
    adversary.add_argument(
        "--eclipse-drop",
        type=float,
        default=None,
        help="drop probability for lookups to eclipsed nodes (default 1.0)",
    )
    adversary.add_argument(
        "--verify-signatures",
        action="store_const",
        const=True,
        default=None,
        help=(
            "switch the repro.sec defence on: forged responses are "
            "rejected and the trust ledger deprioritizes misbehaving "
            "replicas"
        ),
    )
    observability = parser.add_argument_group("observability")
    observability.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "record a per-lookup trace and export it as JSONL to PATH "
            "(analyze with `python -m repro.obs summarize PATH`)"
        ),
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    config = get_preset(args.preset) if args.preset else ExperimentConfig()
    if args.scale is not None:
        if args.scale <= 0:
            raise SystemExit("--scale must be positive")
        config = config.scaled(args.scale)
    overrides = {
        "scheme": args.scheme,
        "cache": args.cache,
        "substrate": args.substrate,
        "num_nodes": args.nodes,
        "num_articles": args.articles,
        "num_queries": args.queries,
        "num_authors": args.authors,
        "bits": args.bits,
        "replication": args.replication,
        "corpus_seed": args.corpus_seed,
        "query_seed": args.query_seed,
        "shortcut_top_n": args.shortcut_top_n,
        "concurrency": args.concurrency,
        "latency_model": args.latency_model,
        "arrival_interval_ms": args.arrival_interval_ms,
        "scheduler": args.scheduler,
        "metrics": args.metrics,
        "fault_drop_probability": args.drop_probability,
        "fault_duplicate_probability": args.duplicate_probability,
        "fault_latency_ms": args.latency_ms,
        "fault_latency_ticks": args.latency_ticks,
        "churn_events": args.churn_events,
        "churn_mode": args.churn_mode,
        "crash_events": args.crash_events,
        "crash_downtime_queries": args.crash_downtime,
        "churn_seed": args.churn_seed,
        "restart_events": args.restart_events,
        "restart_downtime_queries": args.restart_downtime,
        "power_loss_events": args.power_loss_events,
        "durability": args.durability,
        "fsync": args.fsync,
        "data_dir": args.data_dir,
        "predicate_mix": args.predicate_mix,
        "index_structure": args.index_structure,
        "adversary_poisoners": args.poisoners,
        "adversary_liars": args.liars,
        "adversary_sybil_joins": args.sybil_joins,
        "adversary_eclipse_victims": args.eclipse_victims,
        "adversary_eclipse_drop": args.eclipse_drop,
        "verify_signatures": args.verify_signatures,
        "trace": True if args.trace_out else None,
    }
    set_overrides = {key: value for key, value in overrides.items()
                     if value is not None}
    if set_overrides:
        config = replace(config, **set_overrides)
    return config


def _cell_metrics(result: ExperimentResult) -> dict:
    """The comparison numbers of one range-queries cell."""
    return {
        "interactions_per_query": round(result.avg_interactions, 4),
        "found": result.found,
        "searches": result.searches,
        "predicate_queries": result.predicate_queries,
        "nonindexed_queries": result.nonindexed_queries,
        "error_interactions": result.total_error_interactions,
        "normal_bytes_per_query": round(result.normal_bytes_per_query, 1),
        "index_storage_bytes": result.index_storage_bytes,
        "trie_walks": result.perf_counters.get("trie_walks", 0),
        "engine_specializations": result.perf_counters.get(
            "engine_specializations", 0
        ),
    }


def run_comparison(
    config: ExperimentConfig, bench_out: str | None, preset: str
) -> int:
    """Run the trie and covering-chains cells head-to-head and report."""
    cells: dict[str, ExperimentResult] = {}
    for structure in ("trie", "chains"):
        cell_config = replace(config, index_structure=structure)
        print(
            f"running {preset} [{structure}]: {cell_config.num_nodes} nodes, "
            f"{cell_config.num_articles:,} articles, "
            f"{cell_config.num_queries:,} queries "
            f"({100 * cell_config.predicate_mix:.0f}% predicate mix) ...",
            flush=True,
        )
        cells[structure] = Experiment(cell_config).run()
    trie, chains = cells["trie"], cells["chains"]
    rows = [
        ["interactions / query",
         round(trie.avg_interactions, 3), round(chains.avg_interactions, 3)],
        ["lookups found",
         f"{trie.found}/{trie.searches}", f"{chains.found}/{chains.searches}"],
        ["predicate queries", trie.predicate_queries, chains.predicate_queries],
        ["queries hitting recoverable errors",
         trie.nonindexed_queries, chains.nonindexed_queries],
        ["wasted error interactions",
         trie.total_error_interactions, chains.total_error_interactions],
        ["normal traffic / query",
         f"{trie.normal_bytes_per_query:,.0f} B",
         f"{chains.normal_bytes_per_query:,.0f} B"],
        ["index storage",
         f"{trie.index_storage_bytes:,} B", f"{chains.index_storage_bytes:,} B"],
        ["trie walks",
         trie.perf_counters.get("trie_walks", 0),
         chains.perf_counters.get("trie_walks", 0)],
        ["specialization fallbacks",
         trie.perf_counters.get("engine_specializations", 0),
         chains.perf_counters.get("engine_specializations", 0)],
        ["runtime",
         f"{trie.runtime_seconds:.1f} s", f"{chains.runtime_seconds:.1f} s"],
    ]
    print(format_table(
        ["metric", "trie index", "covering chains"],
        rows,
        title=f"{config.scheme} scheme, predicate_mix={config.predicate_mix}",
    ))
    if bench_out:
        record = {
            "preset": preset,
            "scheme": config.scheme,
            "cache": config.cache,
            "workload": {
                "num_nodes": config.num_nodes,
                "num_articles": config.num_articles,
                "num_queries": config.num_queries,
                "num_authors": config.num_authors,
                "predicate_mix": config.predicate_mix,
                "corpus_seed": config.corpus_seed,
                "query_seed": config.query_seed,
            },
            "cells": {
                name: _cell_metrics(result) for name, result in cells.items()
            },
        }
        try:
            with open(bench_out) as handle:
                trajectory = json.load(handle)
        except (OSError, ValueError):
            trajectory = []
        trajectory.append(record)
        with open(bench_out, "w") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")
        print(f"benchmark record appended to {bench_out}")
    return 0


def _sec_cell_metrics(result: ExperimentResult) -> dict:
    """The comparison numbers of one adversarial cell."""
    return {
        "success_rate": round(result.success_rate, 4),
        "found": result.found,
        "searches": result.searches,
        "poisoned_results": result.poisoned_results,
        "poisoned_result_rate": round(result.poisoned_result_rate, 4),
        "forged_answers": result.forged_answers,
        "verify_failures": result.verify_failures,
        "contradictions": result.contradictions,
        "eclipse_drops": result.eclipse_drops,
        "adversarial_nodes": result.adversarial_nodes,
        "sybil_joins": result.sybil_joins,
        "eclipsed_nodes": result.eclipsed_nodes,
        "low_trust_peers": result.low_trust_peers,
        "lookups_gave_up": result.lookups_gave_up,
        "service_failovers": result.service_failovers,
        "retries_per_lookup": round(result.retries_per_lookup, 4),
    }


def run_sec_comparison(
    config: ExperimentConfig, bench_out: str | None, preset: str
) -> int:
    """Run the adversarial cell with verification off and on, and report.

    Same seeds, same Byzantine population (recruitment draws from the
    chaos RNG before any fault draw) -- the only difference between the
    cells is the repro.sec defence.
    """
    cells: dict[str, ExperimentResult] = {}
    for name, verify in (("verify-off", False), ("verify-on", True)):
        cell_config = replace(config, verify_signatures=verify)
        print(
            f"running {preset} [{name}]: {cell_config.num_nodes} nodes, "
            f"{cell_config.adversary_poisoners} poisoners, "
            f"{cell_config.adversary_liars} liars, "
            f"{cell_config.adversary_sybil_joins} sybil joins, "
            f"{cell_config.adversary_eclipse_victims} eclipsed, "
            f"{cell_config.num_queries:,} queries ...",
            flush=True,
        )
        cells[name] = Experiment(cell_config).run()
    off, on = cells["verify-off"], cells["verify-on"]
    rows = [
        ["lookup success rate",
         f"{100 * off.success_rate:.2f}%", f"{100 * on.success_rate:.2f}%"],
        ["poisoned file results",
         f"{off.poisoned_results} ({100 * off.poisoned_result_rate:.2f}%)",
         f"{on.poisoned_results} ({100 * on.poisoned_result_rate:.2f}%)"],
        ["forged index answers delivered",
         off.forged_answers, on.forged_answers],
        ["forgeries caught by verification",
         off.verify_failures, on.verify_failures],
        ["withheld answers contradicted",
         off.contradictions, on.contradictions],
        ["lookups eaten by eclipse sets",
         off.eclipse_drops, on.eclipse_drops],
        ["adversarial nodes (of which Sybils)",
         f"{off.adversarial_nodes} ({off.sybil_joins})",
         f"{on.adversarial_nodes} ({on.sybil_joins})"],
        ["peers below trust threshold",
         off.low_trust_peers, on.low_trust_peers],
        ["replica failovers (service)",
         off.service_failovers, on.service_failovers],
        ["retries / lookup",
         round(off.retries_per_lookup, 4), round(on.retries_per_lookup, 4)],
        ["lookups that gave up", off.lookups_gave_up, on.lookups_gave_up],
        ["runtime",
         f"{off.runtime_seconds:.1f} s", f"{on.runtime_seconds:.1f} s"],
    ]
    print(format_table(
        ["metric", "verification off", "verification on"],
        rows,
        title=(
            f"{config.scheme} scheme under attack, "
            f"{config.num_nodes} nodes, churn_seed={config.churn_seed}"
        ),
    ))
    if bench_out:
        record = {
            "preset": preset,
            "scheme": config.scheme,
            "cache": config.cache,
            "workload": {
                "num_nodes": config.num_nodes,
                "num_articles": config.num_articles,
                "num_queries": config.num_queries,
                "num_authors": config.num_authors,
                "replication": config.replication,
                "fault_drop_probability": config.fault_drop_probability,
                "corpus_seed": config.corpus_seed,
                "query_seed": config.query_seed,
                "churn_seed": config.churn_seed,
            },
            "adversary": {
                "poisoners": config.adversary_poisoners,
                "liars": config.adversary_liars,
                "sybil_joins": config.adversary_sybil_joins,
                "eclipse_victims": config.adversary_eclipse_victims,
                "eclipse_drop": config.adversary_eclipse_drop,
            },
            "cells": {
                name: _sec_cell_metrics(result)
                for name, result in cells.items()
            },
        }
        try:
            with open(bench_out) as handle:
                trajectory = json.load(handle)
        except (OSError, ValueError):
            trajectory = []
        trajectory.append(record)
        with open(bench_out, "w") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")
        print(f"benchmark record appended to {bench_out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = config_from_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.preset in _COMPARISON_PRESETS:
        return run_comparison(config, args.bench_out, args.preset)
    if args.preset in _SEC_PRESETS:
        return run_sec_comparison(config, args.bench_out, args.preset)
    print(
        f"running {config.scheme}/{config.cache} over {config.substrate}: "
        f"{config.num_nodes} nodes, {config.num_articles:,} articles, "
        f"{config.num_queries:,} queries ...",
        flush=True,
    )
    experiment = Experiment(config)
    result = experiment.run()
    if args.trace_out:
        events = experiment.write_trace(args.trace_out)
        print(f"trace: {events:,} events written to {args.trace_out}")
    rows = [
        ["interactions / query", round(result.avg_interactions, 3)],
        ["normal traffic / query", f"{result.normal_bytes_per_query:,.0f} B"],
        ["cache traffic / query", f"{result.cache_bytes_per_query:,.0f} B"],
        ["cache hit ratio", f"{100 * result.hit_ratio:.1f}%"],
        ["first-contact share of hits",
         f"{100 * result.first_contact_hit_share:.1f}%"],
        ["queries to non-indexed data", result.nonindexed_queries],
        ["cached keys / node (avg, max)",
         f"{result.avg_cached_keys_per_node:.1f}, {result.max_cached_keys}"],
        ["regular keys / node", round(result.avg_index_keys_per_node, 1)],
        ["index storage", f"{result.index_storage_bytes / 1e6:.2f} MB"],
        ["busiest node", f"{100 * result.busiest_node_share:.2f}% of queries"],
        ["DHT hops / key", round(result.avg_dht_hops, 2)],
        ["runtime", f"{result.runtime_seconds:.1f} s"],
    ]
    if config.uses_kernel:
        events = result.perf_counters.get("kernel_events_run", 0)
        rows[-1:-1] = [
            ["response time p50 / p95 / p99",
             f"{result.response_time_ms_p50:,.1f} / "
             f"{result.response_time_ms_p95:,.1f} / "
             f"{result.response_time_ms_p99:,.1f} ms"],
            ["kernel events",
             f"{events:,} ({config.resolved_scheduler} scheduler, "
             f"{events / max(result.runtime_seconds, 1e-9):,.0f}/s)"],
        ]
    print(format_table(["metric", "value"], rows, title=result.label()))
    if config.uses_kernel:
        print(format_table(
            ["response-time metric", "value"],
            result.response_time_rows(),
            title="virtual-time kernel",
        ))
    if config.has_chaos:
        print(format_table(
            ["availability metric", "value"],
            result.availability_rows(),
            title="availability under faults",
        ))
    perf = result.perf_counters
    if perf:
        perf_rows = [
            ["xpath parses", f"{perf.get('xpath_parses', 0):,}"],
            ["normalizations", f"{perf.get('normalize_calls', 0):,} "
             f"({100 * result.perf_hit_rate('normalize'):.1f}% cached)"],
            ["query-text parses", f"{perf.get('field_parse_calls', 0):,} "
             f"({100 * result.perf_hit_rate('field_parse'):.1f}% cached)"],
            ["covering checks", f"{perf.get('covers_calls', 0):,} "
             f"({100 * result.perf_hit_rate('covers'):.1f}% cached)"],
            ["homomorphism node visits",
             f"{perf.get('homomorphism_node_visits', 0):,}"],
        ]
        print(format_table(["hot-path operation", "count"], perf_rows,
                           title="perf counters"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
