"""Real-socket transport with the `SimulatedTransport` surface.

:class:`AsyncioTransport` carries :class:`repro.net.message.Message`
frames over UDP datagrams (with a transparent TCP fallback for frames
too large for a datagram) between named endpoints, exposing the same
``register`` / ``send`` / ``send_async`` surface the in-process
:class:`repro.net.transport.SimulatedTransport` gives the index stack --
so :class:`repro.core.service.IndexService` and
:class:`repro.core.engine.LookupEngine` run over real sockets unchanged.

Differences from the simulated transport, all deliberate:

- **Names resolve to addresses.**  Local handlers are registered as
  usual; every other endpoint name maps to a ``(host, port)`` socket
  address via :meth:`add_route` (daemon control names of the shape
  ``daemon@host:port`` self-resolve).  Sending to a name with neither a
  handler nor a route raises :class:`TransportError`, mirroring the
  simulation's "never existed" misuse error.
- **Failure detection is a timer.**  A request that gets no reply within
  its deadline is retried with capped exponential backoff; exhausting
  the retries raises the typed
  :class:`~repro.net.transport.DeliveryError` with the ``timeout``
  reason -- transient like ``dropped``, so the engine's retry logic and
  the service's failover policy apply unchanged.  A peer that answers
  with an ERROR frame (unknown endpoint, crashed node) surfaces as a
  ``DeliveryError`` with that reason.
- **Time is wall-clock behind the kernel's clock protocol.**  The
  transport owns a :class:`WallClock` exposing ``now`` in milliseconds
  exactly like :class:`repro.sim.kernel.EventKernel`, so the tracer's
  ``bind_clock`` works on either and trace timestamps stay in one unit.

Every frame movement is counted in :mod:`repro.perf`
(``rpc_*`` counters, including real byte counts on both directions) and
-- when a tracer is bound -- recorded as the same ``dht_route_hop`` span
events the simulated transport emits, with the measured round-trip time
on the response leg.

Threading model: the transport lives on one asyncio event loop.
:meth:`send` is the blocking surface for code running on *another*
thread (the sequential lookup engine, tests, the cluster harness); it
marshals onto the loop and waits.  Calling it from the loop thread is
refused -- use :meth:`send_async` (continuation-passing, callbacks fire
on the loop thread) or the native :meth:`request` coroutine there.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from repro.net.message import Message
from repro.net.traffic import TrafficMeter
from repro.net.transport import (
    DeliveryError,
    Endpoint,
    ErrorCallback,
    ResponseCallback,
    TransportError,
)
from repro.perf import counters
from repro.rpc.codec import (
    ENVELOPE_BYTES,
    FRAME_ACK,
    FRAME_ERROR,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    OVERSIZED_REASON,
    SIGNED_TRAILER_BYTES,
    STREAM_PREFIX_BYTES,
    CodecError,
    SignedEnvelope,
    decode_error,
    decode_frame_signed,
    decode_message,
    encode_error,
    encode_frame,
    encode_message,
    encode_stream,
    sign_frame,
)
from repro.sec import PUBLIC_KEY_BYTES, NodeIdentity, verify_signature

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer

#: Address of one peer daemon.
Address = tuple[str, int]

#: Prefix of self-resolving daemon control endpoint names.
DAEMON_NAME_PREFIX = "daemon@"


def daemon_endpoint_name(host: str, port: int) -> str:
    """Control endpoint name of the daemon listening at ``host:port``."""
    return f"{DAEMON_NAME_PREFIX}{host}:{port}"


def parse_daemon_name(name: str) -> Optional[Address]:
    """The address a ``daemon@host:port`` name self-resolves to."""
    if not name.startswith(DAEMON_NAME_PREFIX):
        return None
    host, _, port_text = name[len(DAEMON_NAME_PREFIX):].rpartition(":")
    if not host or not port_text.isdigit():
        return None
    return host, int(port_text)


class WallClock:
    """Monotonic wall time in milliseconds, behind the kernel's protocol.

    Exposes the same ``now`` property as
    :class:`repro.sim.kernel.EventKernel`, so everything written against
    the virtual clock (the tracer, latency bookkeeping) runs unchanged
    on real time.  The epoch is the instant of construction.
    """

    __slots__ = ("_t0",)

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    @property
    def now(self) -> float:
        """Milliseconds since this clock was created."""
        return (time.monotonic() - self._t0) * 1000.0


class _DatagramEndpoint(asyncio.DatagramProtocol):
    """Glue between asyncio's datagram callbacks and the transport."""

    def __init__(self, owner: "AsyncioTransport") -> None:
        self._owner = owner

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._owner._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:
        # ICMP unreachable etc.; the request timeout handles the loss.
        pass


class AsyncioTransport:
    """UDP+TCP message transport with the simulated-transport surface."""

    def __init__(
        self,
        *,
        meter: Optional[TrafficMeter] = None,
        clock: Optional[WallClock] = None,
        request_timeout_ms: float = 250.0,
        max_retries: int = 3,
        backoff_cap_ms: float = 2000.0,
        udp_max_bytes: int = 1400,
        dedupe_cap: int = 1024,
        dedupe_ttl_s: float = 60.0,
        tcp_pool_cap: int = 4,
        identity: Optional[NodeIdentity] = None,
        require_signed: bool = False,
        peer_keys: Optional[dict[str, bytes]] = None,
    ) -> None:
        """``request_timeout_ms`` is the first attempt's deadline; each
        retry doubles it up to ``backoff_cap_ms`` (capped exponential
        backoff).  Frames larger than ``udp_max_bytes`` travel over TCP.
        ``dedupe_cap`` / ``dedupe_ttl_s`` bound the server-side reply
        cache that absorbs UDP retransmissions: at most ``dedupe_cap``
        entries, each discarded ``dedupe_ttl_s`` seconds after it was
        last replayed (a retransmission can only arrive within the
        sender's retry window, so a long-lived daemon need not remember
        replies forever).  ``tcp_pool_cap`` bounds the idle TCP
        connections kept open *per peer* for reuse (0 disables reuse and
        restores one-connection-per-exchange).

        ``identity`` switches on the signed-envelope wire extension
        (version-2 frames, see :mod:`repro.rpc.codec`): every outgoing
        frame is ed25519-signed, and every *incoming* signed frame is
        verified -- a bad signature surfaces as a typed
        ``DeliveryError(verify_failed)`` on the client side, or a
        ``verify_failed`` ERROR reply on the serving side.  Unsigned
        peers still interop (their frames stay version 1) unless
        ``require_signed`` is set, which rejects unsigned traffic too.

        A valid signature alone only proves the reply came from *some*
        keypair, so signed replies are additionally checked against a
        per-endpoint-name **key pin**: ``peer_keys`` seeds the pins from
        out-of-band knowledge (cluster membership roster), and endpoints
        without a seed pin on first contact (trust-on-first-use).  A
        signed reply whose key differs from the pin is rejected like a
        bad signature -- a keypair-swapping impostor cannot satisfy an
        established pin.
        """
        if require_signed and identity is None:
            raise ValueError("require_signed needs an identity to sign with")
        if request_timeout_ms <= 0 or backoff_cap_ms <= 0:
            raise ValueError("timeouts must be positive milliseconds")
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if dedupe_cap < 1 or dedupe_ttl_s <= 0:
            raise ValueError("dedupe cache bounds must be positive")
        if tcp_pool_cap < 0:
            raise ValueError("tcp_pool_cap cannot be negative")
        self.meter = meter if meter is not None else TrafficMeter()
        self.clock = clock if clock is not None else WallClock()
        self.request_timeout_ms = request_timeout_ms
        self.max_retries = max_retries
        self.backoff_cap_ms = backoff_cap_ms
        self.udp_max_bytes = udp_max_bytes
        self.identity = identity
        self.require_signed = require_signed
        #: Endpoint name -> pinned ed25519 public key (see pin_peer).
        self._pinned_keys: dict[str, bytes] = {}
        for name, key in (peer_keys or {}).items():
            self.pin_peer(name, key)
        self.tracer: Optional["Tracer"] = None
        self._endpoints: dict[str, Endpoint] = {}
        self._ever_registered: set[str] = set()
        self._routes: dict[str, Address] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[int] = None
        self._udp: Optional[asyncio.DatagramTransport] = None
        self._tcp_server: Optional[asyncio.base_events.Server] = None
        self._pending: dict[int, asyncio.Future] = {}
        self._next_request_id = 1
        #: (peer address, request id) -> (expiry deadline ms, reply
        #: frame), so a UDP retransmission of an already-served request
        #: re-sends the same reply instead of re-running the handler.
        #: LRU-ordered (recently replayed entries migrate to the tail)
        #: and bounded by both capacity and TTL.
        self._served: OrderedDict[
            tuple[Address, int], tuple[float, bytes]
        ] = OrderedDict()
        self._served_cap = dedupe_cap
        self._served_ttl_ms = dedupe_ttl_s * 1000.0
        #: Idle TCP connections kept warm per peer address for reuse.
        self._tcp_pool: dict[
            Address, list[tuple[asyncio.StreamReader, asyncio.StreamWriter]]
        ] = {}
        self._tcp_pool_cap = tcp_pool_cap
        #: Live server-side TCP connections (clients hold them open for
        #: reuse), closed with the transport so their handler tasks end.
        self._server_conns: set[asyncio.StreamWriter] = set()
        self.listen_address: Optional[Address] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(
        self, host: Optional[str] = None, port: int = 0
    ) -> Optional[Address]:
        """Bring the sockets up on the running loop.

        With a ``host``, binds a UDP endpoint *and* a TCP server on the
        same port (``port=0`` lets the OS choose; the chosen port is in
        :attr:`listen_address`) -- the daemon mode.  Without a host,
        binds only an ephemeral loopback UDP socket for replies -- the
        client mode (TCP requests use outgoing connections and need no
        server).
        """
        if self._loop is not None:
            raise TransportError("transport already started")
        self._loop = asyncio.get_running_loop()
        self._loop_thread = threading.get_ident()
        if host is None:
            await self._bind_udp("127.0.0.1", 0)
            return None
        self._tcp_server = await asyncio.start_server(
            self._serve_tcp_connection, host=host, port=port
        )
        bound_port = self._tcp_server.sockets[0].getsockname()[1]
        await self._bind_udp(host, bound_port)
        self.listen_address = (host, bound_port)
        return self.listen_address

    async def _bind_udp(self, host: str, port: int) -> None:
        assert self._loop is not None
        self._udp, _ = await self._loop.create_datagram_endpoint(
            lambda: _DatagramEndpoint(self), local_addr=(host, port)
        )

    async def close(self) -> None:
        """Tear the sockets down and fail every in-flight request."""
        if self._udp is not None:
            self._udp.close()
            self._udp = None
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for pool in self._tcp_pool.values():
            for _, writer in pool:
                writer.close()
        self._tcp_pool.clear()
        for writer in list(self._server_conns):
            writer.close()
        self._server_conns.clear()
        for future in self._pending.values():
            if not future.done():
                future.cancel()
        self._pending.clear()

    # -- endpoint protocol (parity with SimulatedTransport) -----------------

    def register(self, name: str, endpoint: Endpoint) -> None:
        """Attach a local endpoint under a unique name."""
        if name in self._endpoints:
            raise TransportError(f"endpoint already registered: {name!r}")
        self._endpoints[name] = endpoint
        self._ever_registered.add(name)

    def unregister(self, name: str) -> None:
        """Detach a local endpoint."""
        if name not in self._endpoints:
            raise TransportError(f"no such endpoint: {name!r}")
        del self._endpoints[name]

    def is_registered(self, name: str) -> bool:
        """True for local endpoints and routed (remote) names alike."""
        return name in self._endpoints or name in self._routes

    @property
    def endpoint_names(self) -> list[str]:
        """Names of the locally hosted endpoints."""
        return list(self._endpoints)

    def bind_tracer(self, tracer: Optional["Tracer"]) -> None:
        """Attach (or detach) the lookup tracer (see SimulatedTransport)."""
        self.tracer = tracer

    # -- routing ------------------------------------------------------------

    def add_route(self, name: str, address: Address) -> None:
        """Map a remote endpoint name to its daemon's socket address."""
        self._routes[name] = address

    def remove_route(self, name: str) -> None:
        """Forget a remote endpoint (e.g. a departed daemon's names)."""
        self._routes.pop(name, None)

    def pin_peer(self, name: str, public_key: bytes) -> None:
        """Pin ``name``'s ed25519 public key from out-of-band knowledge.

        Signed replies from ``name`` must thereafter carry exactly this
        key; anything else is rejected as ``verify_failed``.  Re-pinning
        the same key is a no-op; changing an established pin must be an
        explicit operator decision, so a conflicting pin raises.
        """
        key = bytes(public_key)
        if len(key) != PUBLIC_KEY_BYTES:
            raise ValueError(f"bad public key length: {len(key)}")
        current = self._pinned_keys.get(name)
        if current is not None and current != key:
            raise TransportError(f"conflicting key pin for {name!r}")
        self._pinned_keys[name] = key

    def pinned_key(self, name: str) -> Optional[bytes]:
        """The pinned (seeded or learned) key of ``name``, if any."""
        return self._pinned_keys.get(name)

    def _resolve(self, name: str) -> Address:
        address = self._routes.get(name)
        if address is None:
            address = parse_daemon_name(name)
        if address is None:
            raise TransportError(f"no route to endpoint: {name!r}")
        return address

    # -- request path (coroutine core) --------------------------------------

    async def request(self, message: Message) -> Optional[Message]:
        """Send one message and await its reply (None for an ACK).

        Retries timeouts with capped exponential backoff; raises
        :class:`DeliveryError` (``timeout`` after retry exhaustion, or
        the peer-reported reason) for runtime failures and
        :class:`TransportError` for misuse (unroutable name, transport
        not started).
        """
        if self._loop is None:
            raise TransportError("transport not started")
        handler = self._endpoints.get(message.destination)
        if handler is not None:
            return self._deliver_local(handler, message)
        address = self._resolve(message.destination)
        signing = self.identity is not None
        body = encode_message(message, signed=signing)
        self.meter.record(message)
        counters.rpc_requests += 1
        request_id = self._next_request_id
        self._next_request_id += 1
        use_tcp = self._frame_overhead + len(body) > self.udp_max_bytes
        frame_type, reply_body, envelope = await self._exchange(
            request_id, body, address, message.destination, use_tcp
        )
        self._verify_reply(envelope, message.destination)
        if frame_type == FRAME_ERROR:
            reason = decode_error(reply_body)
            if reason == OVERSIZED_REASON:
                # The response did not fit a datagram: repeat the request
                # over TCP (fresh id -- the reply cache must not replay
                # the oversized error) and take the streamed reply.
                counters.rpc_oversized_fallbacks += 1
                retry_id = self._next_request_id
                self._next_request_id += 1
                frame_type, reply_body, envelope = await self._exchange(
                    retry_id, body, address, message.destination, True
                )
                self._verify_reply(envelope, message.destination)
                if frame_type == FRAME_ERROR:
                    raise DeliveryError(
                        decode_error(reply_body), message.destination
                    )
            else:
                raise DeliveryError(reason, message.destination)
        if frame_type == FRAME_ACK:
            return None
        response = decode_message(reply_body, signed=envelope is not None)
        self.meter.record(response)
        counters.rpc_responses += 1
        return response

    def _verify_reply(
        self, envelope: Optional[SignedEnvelope], destination: str
    ) -> None:
        """Check a reply's signature (or its absence) before trusting it.

        A bad signature -- or an unsigned reply under ``require_signed``
        -- surfaces as ``DeliveryError(verify_failed)``: transient and
        ``retry_elsewhere``, so the service fails over to another
        replica exactly as the simulated adversary path does.

        A *valid* signature is then bound to the expected peer: the
        envelope's key must match ``destination``'s pin (seeded via
        ``peer_keys``/``pin_peer``, or learned on first contact).  The
        signature alone proves only that some keypair produced the
        frame; the pin is what stops an impostor substituting its own.
        """
        if envelope is None:
            if self.require_signed:
                counters.sec_verify_failures += 1
                raise DeliveryError(DeliveryError.VERIFY_FAILED, destination)
            return
        if not verify_signature(
            envelope.public_key, envelope.signed, envelope.signature
        ):
            counters.sec_verify_failures += 1
            if self.tracer is not None:
                self.tracer.sec_verify_fail(
                    destination=destination, role="unknown"
                )
            raise DeliveryError(DeliveryError.VERIFY_FAILED, destination)
        reply_key = bytes(envelope.public_key)
        pinned = self._pinned_keys.get(destination)
        if pinned is None:
            # Trust on first use: remember the key this endpoint first
            # answered with and hold it to that from now on.
            self._pinned_keys[destination] = reply_key
        elif reply_key != pinned:
            counters.sec_verify_failures += 1
            if self.tracer is not None:
                self.tracer.sec_verify_fail(
                    destination=destination, role="impostor"
                )
            raise DeliveryError(DeliveryError.VERIFY_FAILED, destination)

    @property
    def _frame_overhead(self) -> int:
        """Frame bytes beyond the body: envelope, plus the signed trailer."""
        if self.identity is not None:
            return ENVELOPE_BYTES + SIGNED_TRAILER_BYTES
        return ENVELOPE_BYTES

    def _request_frame(self, request_id: int, body: bytes) -> bytes:
        """An outgoing REQUEST frame, signed when an identity is set."""
        if self.identity is not None:
            return sign_frame(FRAME_REQUEST, request_id, body, self.identity)
        return encode_frame(FRAME_REQUEST, request_id, body)

    def _reply_frame(
        self, frame_type: int, request_id: int, body: bytes = b""
    ) -> bytes:
        """An outgoing reply frame, signed when an identity is set."""
        if self.identity is not None:
            return sign_frame(frame_type, request_id, body, self.identity)
        return encode_frame(frame_type, request_id, body)

    async def request_many(
        self, messages: list[Message]
    ) -> list[object]:
        """Issue several requests concurrently -- the pipelined path.

        Every message's exchange starts immediately (no request/response
        lockstep); the returned list is aligned with ``messages``, each
        item the response :class:`Message`, ``None`` for an ACK, or the
        :class:`DeliveryError` that exchange raised (runtime failures
        are per-item data, so one dead replica cannot abort the batch).
        Misuse (unroutable name, transport not started) still raises.
        """
        counters.rpc_batches += 1
        counters.rpc_batched_messages += len(messages)

        async def one(message: Message) -> object:
            try:
                return await self.request(message)
            except DeliveryError as error:
                return error

        return list(await asyncio.gather(*(one(m) for m in messages)))

    def send_many(self, messages: list[Message]) -> list[object]:
        """Blocking batched request from a non-loop thread.

        The batch is marshalled onto the loop as one unit and every
        exchange runs concurrently; after all of them settle, the first
        :class:`DeliveryError` (if any) is raised -- matching the
        sequential path's failure surface while still attempting every
        message.  Returns the aligned response list otherwise.
        """
        if self._loop is None:
            raise TransportError("transport not started")
        if threading.get_ident() == self._loop_thread:
            raise TransportError(
                "blocking send_many from the event-loop thread; "
                "use request_many"
            )
        if not messages:
            return []
        handle = asyncio.run_coroutine_threadsafe(
            self.request_many(list(messages)), self._loop
        )
        results = handle.result()
        for result in results:
            if isinstance(result, DeliveryError):
                raise result
        return results

    async def _exchange(
        self,
        request_id: int,
        body: bytes,
        address: Address,
        destination: str,
        use_tcp: bool,
    ) -> tuple[int, bytes, Optional[SignedEnvelope]]:
        """One request with its timeout/retry loop; returns the reply."""
        timeout_ms = self.request_timeout_ms
        for attempt in range(self.max_retries + 1):
            if attempt:
                counters.rpc_retries += 1
            try:
                if use_tcp:
                    return await asyncio.wait_for(
                        self._exchange_tcp(request_id, body, address),
                        timeout_ms / 1000.0,
                    )
                return await asyncio.wait_for(
                    self._exchange_udp(request_id, body, address),
                    timeout_ms / 1000.0,
                )
            except asyncio.TimeoutError:
                counters.rpc_timeouts += 1
                timeout_ms = min(timeout_ms * 2.0, self.backoff_cap_ms)
            except ConnectionRefusedError:
                # The daemon's TCP port is gone: the node departed.
                raise DeliveryError(DeliveryError.UNREGISTERED, destination)
            except OSError:
                counters.rpc_timeouts += 1
                timeout_ms = min(timeout_ms * 2.0, self.backoff_cap_ms)
            finally:
                self._pending.pop(request_id, None)
        raise DeliveryError(DeliveryError.TIMEOUT, destination)

    async def _exchange_udp(
        self, request_id: int, body: bytes, address: Address
    ) -> tuple[int, bytes, Optional[SignedEnvelope]]:
        assert self._loop is not None and self._udp is not None
        future: asyncio.Future = self._loop.create_future()
        self._pending[request_id] = future
        frame = self._request_frame(request_id, body)
        self._udp.sendto(frame, address)
        counters.rpc_udp_frames += 1
        counters.rpc_bytes_sent += len(frame)
        return await future

    async def _exchange_tcp(
        self, request_id: int, body: bytes, address: Address
    ) -> tuple[int, bytes, Optional[SignedEnvelope]]:
        """One TCP exchange over a pooled (kept-alive) connection.

        Connections park in a per-address pool between exchanges, so a
        covering-chain's oversized fetches pay the handshake once, not
        per request.  A pooled connection the peer closed while idle is
        detected on the first read/write and retried once on a fresh
        connection; a connection whose exchange was abandoned mid-flight
        (timeout cancellation, codec error) is closed, never reused --
        the stream position would be ambiguous.
        """
        frame = self._request_frame(request_id, body)
        payload = encode_stream(frame)
        conn = self._checkout_tcp(address)
        reused = conn is not None
        if conn is None:
            conn = await asyncio.open_connection(*address)
            counters.rpc_tcp_connects += 1
        reply: Optional[bytes] = None
        while True:
            reader, writer = conn
            try:
                writer.write(payload)
                await writer.drain()
                counters.rpc_tcp_frames += 1
                counters.rpc_bytes_sent += len(frame) + STREAM_PREFIX_BYTES
                prefix = await reader.readexactly(STREAM_PREFIX_BYTES)
                reply = await reader.readexactly(
                    int.from_bytes(prefix, "big")
                )
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
            ):
                writer.close()
                if not reused:
                    raise
                # The parked connection went stale while idle: one retry
                # on a demonstrably fresh connection.
                reused = False
                conn = await asyncio.open_connection(*address)
                counters.rpc_tcp_connects += 1
                continue
            except BaseException:
                # Includes the caller's timeout cancellation: the
                # exchange is mid-flight, the stream cannot be reused.
                writer.close()
                raise
            break
        counters.rpc_bytes_received += len(reply) + STREAM_PREFIX_BYTES
        try:
            frame_type, reply_id, reply_body, envelope = decode_frame_signed(
                reply
            )
            if reply_id != request_id:
                raise CodecError(
                    f"reply correlates to {reply_id}, expected {request_id}"
                )
        except CodecError:
            writer.close()
            raise
        if reused:
            counters.rpc_tcp_reuses += 1
        self._checkin_tcp(address, conn)
        return frame_type, bytes(reply_body), envelope

    def _checkout_tcp(
        self, address: Address
    ) -> Optional[tuple[asyncio.StreamReader, asyncio.StreamWriter]]:
        """An idle pooled connection to ``address``, if one is alive."""
        pool = self._tcp_pool.get(address)
        while pool:
            conn = pool.pop()
            if not conn[1].is_closing():
                return conn
        return None

    def _checkin_tcp(
        self,
        address: Address,
        conn: tuple[asyncio.StreamReader, asyncio.StreamWriter],
    ) -> None:
        """Park a healthy connection for reuse (bounded per address)."""
        if conn[1].is_closing() or self._tcp_pool_cap == 0:
            conn[1].close()
            return
        pool = self._tcp_pool.setdefault(address, [])
        pool.append(conn)
        while len(pool) > self._tcp_pool_cap:
            pool.pop(0)[1].close()

    def _deliver_local(
        self, handler: Endpoint, message: Message
    ) -> Optional[Message]:
        """Serve a locally hosted destination without touching sockets.

        The message still round-trips through the codec, so local and
        remote delivery exercise identical wire semantics and metering.
        """
        delivered = decode_message(encode_message(message))
        self.meter.record(delivered)
        response = handler(delivered)
        if response is None:
            return None
        returned = decode_message(encode_message(response))
        self.meter.record(returned)
        return returned

    # -- blocking / continuation surfaces ------------------------------------

    def send(self, message: Message) -> Optional[Message]:
        """Blocking request from a non-loop thread (engine surface).

        Semantics match ``SimulatedTransport.send``: the response
        message or ``None``, with :class:`DeliveryError` for runtime
        failures.  When a tracer is bound, the request and response legs
        are recorded as ``dht_route_hop`` events -- the response leg
        carries the measured round-trip in ``latency_ms``.
        """
        if self._loop is None:
            raise TransportError("transport not started")
        if threading.get_ident() == self._loop_thread:
            raise TransportError(
                "blocking send from the event-loop thread; use send_async"
            )
        started = self.clock.now
        if self.tracer is not None:
            self._trace_hop(message, "request", 0.0)
        handle = asyncio.run_coroutine_threadsafe(
            self.request(message), self._loop
        )
        response = handle.result()
        if response is not None and self.tracer is not None:
            self._trace_hop(response, "response", self.clock.now - started)
        return response

    def send_async(
        self,
        message: Message,
        on_result: ResponseCallback,
        on_error: ErrorCallback,
    ) -> None:
        """Continuation-passing request (callbacks on the loop thread)."""
        if self._loop is None:
            raise TransportError("transport not started")

        async def run() -> None:
            try:
                result = await self.request(message)
            except DeliveryError as error:
                on_error(error)
            else:
                on_result(result)

        if threading.get_ident() == self._loop_thread:
            self._loop.create_task(run())
        else:
            asyncio.run_coroutine_threadsafe(run(), self._loop)

    def _trace_hop(self, message: Message, leg: str, latency_ms: float) -> None:
        assert self.tracer is not None
        self.tracer.route_hop(
            src=message.source,
            dst=message.destination,
            message=message.kind.value,
            legs=max(1, message.route_hops),
            latency_ms=latency_ms,
            leg=leg,
            use_current=True,
        )

    # -- serving ------------------------------------------------------------

    def _on_datagram(self, data: bytes, addr: Address) -> None:
        counters.rpc_bytes_received += len(data)
        try:
            frame_type, request_id, body, envelope = decode_frame_signed(data)
        except CodecError:
            counters.rpc_codec_errors += 1
            return
        if frame_type == FRAME_REQUEST:
            reply = self._serve_request(
                request_id, body, addr, via_udp=True, envelope=envelope
            )
            if self._udp is not None:
                self._udp.sendto(reply, addr)
                counters.rpc_udp_frames += 1
                counters.rpc_bytes_sent += len(reply)
            return
        future = self._pending.pop(request_id, None)
        if future is not None and not future.done():
            future.set_result((frame_type, bytes(body), envelope))

    def _serve_request(
        self,
        request_id: int,
        body: bytes,
        addr: Address,
        via_udp: bool,
        envelope: Optional[SignedEnvelope] = None,
    ) -> bytes:
        """Handle one incoming REQUEST; returns the reply frame."""
        cache_key = (addr, request_id)
        cached = self._cached_reply(cache_key)
        if cached is not None:
            return cached
        if envelope is not None and not verify_signature(
            envelope.public_key, envelope.signed, envelope.signature
        ):
            # A forged request is refused before the handler runs; the
            # reply is NOT cached (the honest sender may retransmit the
            # authentic frame under the same id).
            counters.sec_verify_failures += 1
            return self._reply_frame(
                FRAME_ERROR,
                request_id,
                encode_error(DeliveryError.VERIFY_FAILED),
            )
        if self.require_signed and envelope is None:
            # Refused, and NOT cached -- like the forged-signature path
            # above.  An unsigned datagram's source address is attacker
            # chosen, so remembering this rejection under
            # ``(addr, request_id)`` would let a spoofer pre-poison the
            # reply slot of an honest peer's next (guessably sequential)
            # request id.
            return self._reply_frame(
                FRAME_ERROR,
                request_id,
                encode_error(DeliveryError.VERIFY_FAILED),
            )
        try:
            message = decode_message(body, signed=envelope is not None)
        except CodecError:
            counters.rpc_codec_errors += 1
            return self._reply_frame(
                FRAME_ERROR, request_id, encode_error("codec")
            )
        handler = self._endpoints.get(message.destination)
        if handler is None:
            # Over the wire every unknown name is a runtime condition
            # (the peer cannot distinguish "never existed" from
            # "departed"), so it maps to the departed reason.
            reply = self._reply_frame(
                FRAME_ERROR,
                request_id,
                encode_error(DeliveryError.UNREGISTERED),
            )
            self._remember_reply(cache_key, reply)
            return reply
        self.meter.record(message)
        response = handler(message)
        if response is None:
            reply = self._reply_frame(FRAME_ACK, request_id)
        else:
            self.meter.record(response)
            response_body = encode_message(
                response, signed=self.identity is not None
            )
            if (
                via_udp
                and self._frame_overhead + len(response_body)
                > self.udp_max_bytes
            ):
                # Do not cache: the sender repeats over TCP with a fresh
                # id and must get the real response there.
                return self._reply_frame(
                    FRAME_ERROR, request_id, encode_error(OVERSIZED_REASON)
                )
            reply = self._reply_frame(FRAME_RESPONSE, request_id, response_body)
        self._remember_reply(cache_key, reply)
        return reply

    def _cached_reply(self, key: tuple[Address, int]) -> Optional[bytes]:
        """The remembered reply for a retransmission, if still fresh."""
        entry = self._served.get(key)
        if entry is None:
            return None
        deadline, reply = entry
        now = self.clock.now
        if now >= deadline:
            del self._served[key]
            return None
        # Replaying refreshes both recency (LRU order) and the TTL: the
        # peer is evidently still retrying this request.
        self._served[key] = (now + self._served_ttl_ms, reply)
        self._served.move_to_end(key)
        return reply

    def _remember_reply(self, key: tuple[Address, int], reply: bytes) -> None:
        now = self.clock.now
        # Expired entries drain from the LRU head as new replies arrive,
        # so an idle-then-busy daemon does not hold stale replies for
        # the whole capacity's worth of new traffic.
        while self._served:
            head_key = next(iter(self._served))
            if self._served[head_key][0] > now:
                break
            del self._served[head_key]
        self._served[key] = (now + self._served_ttl_ms, reply)
        while len(self._served) > self._served_cap:
            self._served.popitem(last=False)

    async def _serve_tcp_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername") or ("?", 0)
        addr: Address = (str(peer[0]), int(peer[1]))
        self._server_conns.add(writer)
        try:
            while True:
                try:
                    prefix = await reader.readexactly(STREAM_PREFIX_BYTES)
                except asyncio.IncompleteReadError:
                    break
                frame = await reader.readexactly(
                    int.from_bytes(prefix, "big")
                )
                counters.rpc_bytes_received += len(frame) + STREAM_PREFIX_BYTES
                try:
                    frame_type, request_id, body, envelope = (
                        decode_frame_signed(frame)
                    )
                except CodecError:
                    counters.rpc_codec_errors += 1
                    break
                if frame_type != FRAME_REQUEST:
                    break
                reply = self._serve_request(
                    request_id, body, addr, via_udp=False, envelope=envelope
                )
                writer.write(encode_stream(reply))
                await writer.drain()
                counters.rpc_tcp_frames += 1
                counters.rpc_bytes_sent += len(reply) + STREAM_PREFIX_BYTES
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._server_conns.discard(writer)
            try:
                writer.close()
            except RuntimeError:
                pass  # loop already closed under a hard teardown
