"""Loopback cluster harness: N daemons + a wire client in one loop.

:class:`LocalCluster` spawns ``num_nodes`` :class:`NodeDaemon` instances
on ephemeral loopback ports inside one background asyncio loop --
daemon 0 seeds the overlay, the rest join it over the wire -- and
:class:`ClusterClient` is the user's side: it discovers the membership
with a ``members`` control exchange, builds a local *routing mirror* of
the substrate (routing state only; it stores no data and hosts no
endpoints), and then runs the ordinary
:class:`~repro.core.engine.LookupEngine` against the cluster, every
exchange travelling through real UDP/TCP sockets.

The mirror is what makes the client thin: ``responsible_nodes`` answers
placement questions locally (exactly the knowledge a DHT client library
has), while every data operation -- inserts, queries, file fetches,
shortcut creation -- is a message to a daemon.  Inserts are one message
per replica placement (``INDEX_INSERT`` / ``store_file`` to the owning
daemon's control endpoint); lookups go straight to ``node:`` endpoints
and reuse the engine's covering-chain walk unchanged.

Everything runs in-process, so tests and the
``examples/real_cluster.py`` demo get real-socket behaviour with
deterministic membership (seeded node ids) and no orphaned processes.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import TYPE_CHECKING, Optional

from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine, SearchTrace
from repro.core.fields import ARTICLE_SCHEMA, Record, Schema
from repro.core.query import FieldQuery
from repro.core.service import FILE_MARK, IndexService
from repro.dht import DEFAULT_BITS, hash_key
from repro.net.message import Message, MessageKind
from repro.net.transport import TransportError
from repro.rpc.daemon import (
    NodeDaemon,
    build_scheme,
    build_substrate,
    parse_member,
)
from repro.rpc.transport import (
    Address,
    AsyncioTransport,
    daemon_endpoint_name,
)
from repro.storage.store import DHTStorage

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer


class ClusterClient:
    """A lookup client speaking to a daemon overlay over real sockets."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        bootstrap: Address,
        *,
        substrate: str = "chord",
        scheme: str = "simple",
        cache: str = "none",
        replication: int = 1,
        bits: int = DEFAULT_BITS,
        user: str = "user:0",
        schema: Optional[Schema] = None,
        tracer: Optional["Tracer"] = None,
        request_timeout_ms: float = 250.0,
        max_retries: int = 3,
    ) -> None:
        """Connect, discover the membership, and build the mirror.

        Must be called from a thread *other than* the loop's -- the
        client surface is blocking (it drives the sequential engine).
        """
        self._loop = loop
        self.schema = schema if schema is not None else ARTICLE_SCHEMA
        self.scheme = build_scheme(scheme, self.schema)
        self.transport = AsyncioTransport(
            request_timeout_ms=request_timeout_ms, max_retries=max_retries
        )
        asyncio.run_coroutine_threadsafe(self.transport.start(), loop).result()
        if tracer is not None:
            tracer.bind_clock(self.transport.clock)
            self.transport.bind_tracer(tracer)
        #: Discovered membership: node id -> daemon address.
        self.members = self._discover(bootstrap)
        if not self.members:
            raise TransportError("bootstrap daemon reported no members")
        for node_id, address in self.members.items():
            self.transport.add_route(
                IndexService.endpoint_name(node_id), address
            )
            self.transport.add_route(daemon_endpoint_name(*address), address)
        protocol = build_substrate(
            substrate, sorted(self.members), bits=bits
        )
        self.index_store = DHTStorage(protocol, replication=replication)
        self.file_store = DHTStorage(protocol, replication=replication)
        cache_policy, cache_capacity = CachePolicy.parse(cache)
        # local_nodes=() -> the client hosts no node endpoints: the
        # mirror answers placement only, data lives in the daemons.
        # The cache policy matters client-side too: it decides whether
        # successful lookups send CACHE_INSERT shortcuts to the daemons.
        self.service = IndexService(
            self.schema,
            self.scheme,
            self.index_store,
            self.file_store,
            self.transport,
            cache_policy=cache_policy,
            cache_capacity=cache_capacity,
            local_nodes=(),
        )
        self.engine = LookupEngine(self.service, user=user, tracer=tracer)

    def _discover(self, bootstrap: Address) -> dict[int, Address]:
        response = self.transport.send(
            Message(
                kind=MessageKind.CONTROL,
                source="client",
                destination=daemon_endpoint_name(*bootstrap),
                payload=("members",),
            )
        )
        assert response is not None and response.payload[0] == "members"
        return dict(parse_member(entry) for entry in response.payload[1:])

    # -- data plane ---------------------------------------------------------

    def _daemon_name(self, node_id: int) -> str:
        return daemon_endpoint_name(*self.members[node_id])

    def insert_record(self, record: Record) -> FieldQuery:
        """Publish a record into the cluster; returns its MSD.

        Mirrors :meth:`IndexService.insert_record`, but every replica
        placement is one wire message to the owning daemon.
        """
        msd = FieldQuery.msd_of(record)
        msd_key = msd.key()
        for node in self.file_store.responsible_nodes(msd_key):
            self.transport.send(
                Message(
                    kind=MessageKind.CONTROL,
                    source=self.engine.user,
                    destination=self._daemon_name(node),
                    payload=("store_file", msd_key, FILE_MARK),
                )
            )
        for source, target in self.scheme.mappings_for(record):
            for node in self.index_store.responsible_nodes(source.key()):
                self.transport.send(
                    Message(
                        kind=MessageKind.INDEX_INSERT,
                        source=self.engine.user,
                        destination=self._daemon_name(node),
                        payload=(source.key(), target.key()),
                    )
                )
        return msd

    def search(self, query: FieldQuery, target: Record) -> SearchTrace:
        """Covering-chain lookup over the wire (see LookupEngine.search)."""
        return self.engine.search(query, target)

    def ping(self, node_id: int) -> bool:
        """Probe one daemon's control endpoint."""
        response = self.transport.send(
            Message(
                kind=MessageKind.CONTROL,
                source=self.engine.user,
                destination=self._daemon_name(node_id),
                payload=("ping",),
            )
        )
        return response is not None and response.payload[0] == "pong"

    def shutdown_daemon(self, node_id: int) -> None:
        """Ask one daemon to stop (used by the CLI demo and tests)."""
        self.transport.send(
            Message(
                kind=MessageKind.CONTROL,
                source=self.engine.user,
                destination=self._daemon_name(node_id),
                payload=("shutdown",),
            )
        )

    def close(self) -> None:
        """Release the client's socket."""
        asyncio.run_coroutine_threadsafe(
            self.transport.close(), self._loop
        ).result()


class LocalCluster:
    """N node daemons on loopback ports inside one background loop.

    Usable as a context manager::

        with LocalCluster(5, substrate="chord") as cluster:
            client = cluster.client()
            client.insert_record(record)
            trace = client.search(query, record)

    Node ids are seeded deterministically (``cluster-node-<i>``), so the
    overlay layout -- hence replica placement and covering chains -- is
    reproducible across runs; only socket ports and wall-clock latencies
    vary.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        substrate: str = "chord",
        scheme: str = "simple",
        cache: str = "none",
        replication: int = 1,
        bits: int = DEFAULT_BITS,
        host: str = "127.0.0.1",
        request_timeout_ms: float = 250.0,
        max_retries: int = 3,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.substrate = substrate
        self.scheme = scheme
        self.cache = cache
        self.replication = replication
        self.bits = bits
        self.host = host
        self.request_timeout_ms = request_timeout_ms
        self.max_retries = max_retries
        self.daemons: list[NodeDaemon] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._serving: list = []

    @property
    def node_ids(self) -> list[int]:
        """Deterministic node ids, one per daemon index."""
        ids = sorted(
            {
                hash_key(f"cluster-node-{i}", self.bits)
                for i in range(self.num_nodes)
            }
        )
        if len(ids) != self.num_nodes:
            raise RuntimeError("node id collision; increase bits")
        return ids

    def start(self, converge_timeout_s: float = 15.0) -> "LocalCluster":
        """Boot every daemon and wait for full membership convergence."""
        if self._loop is not None:
            raise RuntimeError("cluster already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="local-cluster", daemon=True
        )
        self._thread.start()
        bootstrap: Optional[Address] = None
        for node_id in self.node_ids:
            daemon = NodeDaemon(
                self.host,
                0,
                substrate=self.substrate,
                scheme=self.scheme,
                cache=self.cache,
                replication=self.replication,
                bits=self.bits,
                node_id=node_id,
                request_timeout_ms=self.request_timeout_ms,
                max_retries=self.max_retries,
            )
            asyncio.run_coroutine_threadsafe(
                daemon.start(bootstrap), self._loop
            ).result()
            self._serving.append(
                asyncio.run_coroutine_threadsafe(daemon.serve(), self._loop)
            )
            self.daemons.append(daemon)
            if bootstrap is None:
                bootstrap = daemon.address
        deadline = time.monotonic() + converge_timeout_s
        while any(len(d.peers) < self.num_nodes for d in self.daemons):
            if time.monotonic() > deadline:
                raise RuntimeError("cluster membership did not converge")
            time.sleep(0.01)
        return self

    def client(self, **overrides) -> ClusterClient:
        """A wire client bootstrapped off daemon 0."""
        assert self._loop is not None and self.daemons
        options = dict(
            substrate=self.substrate,
            scheme=self.scheme,
            cache=self.cache,
            replication=self.replication,
            bits=self.bits,
            request_timeout_ms=self.request_timeout_ms,
            max_retries=self.max_retries,
        )
        options.update(overrides)
        return ClusterClient(self._loop, self.daemons[0].address, **options)

    def stop(self) -> None:
        """Stop every daemon, then tear the loop down (idempotent)."""
        if self._loop is None:
            return
        for daemon in self.daemons:
            self._loop.call_soon_threadsafe(daemon.stop)
        for handle in self._serving:
            handle.result(timeout=10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=10.0)
        self._loop.close()
        self._loop = None
        self._thread = None
        self._serving = []

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
