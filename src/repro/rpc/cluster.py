"""Loopback cluster harness: N daemons + a wire client in one loop.

:class:`LocalCluster` spawns ``num_nodes`` :class:`NodeDaemon` instances
on ephemeral loopback ports inside one background asyncio loop --
daemon 0 seeds the overlay, the rest join it over the wire -- and
:class:`ClusterClient` is the user's side: it discovers the membership
with a ``members`` control exchange, builds a local *routing mirror* of
the substrate (routing state only; it stores no data and hosts no
endpoints), and then runs the ordinary
:class:`~repro.core.engine.LookupEngine` against the cluster, every
exchange travelling through real UDP/TCP sockets.

The mirror is what makes the client thin: ``responsible_nodes`` answers
placement questions locally (exactly the knowledge a DHT client library
has), while every data operation -- inserts, queries, file fetches,
shortcut creation -- is a message to a daemon.  Inserts are one message
per replica placement (``INDEX_INSERT`` / ``store_file`` to the owning
daemon's control endpoint); lookups go straight to ``node:`` endpoints
and reuse the engine's covering-chain walk unchanged.

Everything runs in-process, so tests and the
``examples/real_cluster.py`` demo get real-socket behaviour with
deterministic membership (seeded node ids) and no orphaned processes.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from typing import TYPE_CHECKING, Optional

from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine, SearchTrace
from repro.core.fields import ARTICLE_SCHEMA, Record, Schema
from repro.core.query import FieldQuery
from repro.core.service import FILE_MARK, IndexService
from repro.dht import DEFAULT_BITS, hash_key
from repro.net.message import Message, MessageKind
from repro.net.transport import TransportError
from repro.rpc.daemon import (
    NodeDaemon,
    build_scheme,
    build_substrate,
    parse_member,
)
from repro.rpc.transport import (
    Address,
    AsyncioTransport,
    daemon_endpoint_name,
)
from repro.sec import NodeIdentity
from repro.storage.durable import tear_wal
from repro.storage.store import DHTStorage

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer


class ClusterClient:
    """A lookup client speaking to a daemon overlay over real sockets."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        bootstrap: Address,
        *,
        substrate: str = "chord",
        scheme: str = "simple",
        cache: str = "none",
        replication: int = 1,
        bits: int = DEFAULT_BITS,
        user: str = "user:0",
        schema: Optional[Schema] = None,
        tracer: Optional["Tracer"] = None,
        request_timeout_ms: float = 250.0,
        max_retries: int = 3,
        pipelined: bool = True,
        discover_timeout_ms: float = 2000.0,
        discover_retries: int = 2,
        identity: Optional[NodeIdentity] = None,
        require_signed: bool = False,
        peer_keys: Optional[dict[int, bytes]] = None,
    ) -> None:
        """Connect, discover the membership, and build the mirror.

        ``peer_keys`` maps node ids to their daemons' ed25519 public
        keys (the cluster membership roster): each discovered member's
        endpoint names are *pinned* to its roster key, so a signed reply
        from an impostor keypair is rejected even though its signature
        is internally valid.  Members without a roster entry fall back
        to trust-on-first-use pinning inside the transport.

        Must be called from a thread *other than* the loop's -- the
        client surface is blocking (it drives the sequential engine).

        ``pipelined`` batches an insert's replica placements into one
        concurrent round and fire-and-forgets cache shortcuts, instead
        of one blocking round-trip per message (``False`` restores the
        strict request/response lockstep, for A/B measurement).
        ``discover_timeout_ms`` / ``discover_retries`` bound every
        membership discovery: a dead bootstrap raises
        :class:`TransportError` after at most
        ``(discover_retries + 1) * discover_timeout_ms`` instead of
        stalling the caller behind the transport's own retry ladder.
        """
        if discover_timeout_ms <= 0:
            raise ValueError("discover_timeout_ms must be positive")
        if discover_retries < 0:
            raise ValueError("discover_retries cannot be negative")
        self._loop = loop
        self.pipelined = pipelined
        self.discover_timeout_ms = discover_timeout_ms
        self.discover_retries = discover_retries
        self.schema = schema if schema is not None else ARTICLE_SCHEMA
        self.scheme = build_scheme(scheme, self.schema)
        self.transport = AsyncioTransport(
            request_timeout_ms=request_timeout_ms,
            max_retries=max_retries,
            identity=identity,
            require_signed=require_signed,
        )
        asyncio.run_coroutine_threadsafe(self.transport.start(), loop).result()
        if tracer is not None:
            tracer.bind_clock(self.transport.clock)
            self.transport.bind_tracer(tracer)
        #: Discovered membership: node id -> daemon address.
        try:
            self.members = self._discover(bootstrap)
            if not self.members:
                raise TransportError("bootstrap daemon reported no members")
            roster = dict(peer_keys or {})
            for node_id, address in self.members.items():
                name = IndexService.endpoint_name(node_id)
                control = daemon_endpoint_name(*address)
                self.transport.add_route(name, address)
                self.transport.add_route(control, address)
                key = roster.get(node_id)
                if key is not None:
                    # A conflict here (e.g. the TOFU pin learned during
                    # discovery disagreeing with the roster) raises: the
                    # bootstrap answered with a non-member key.
                    self.transport.pin_peer(name, key)
                    self.transport.pin_peer(control, key)
        except BaseException:
            # Failed construction must not leak the client socket.
            asyncio.run_coroutine_threadsafe(
                self.transport.close(), loop
            ).result()
            raise
        protocol = build_substrate(
            substrate, sorted(self.members), bits=bits
        )
        self.index_store = DHTStorage(protocol, replication=replication)
        self.file_store = DHTStorage(protocol, replication=replication)
        cache_policy, cache_capacity = CachePolicy.parse(cache)
        # local_nodes=() -> the client hosts no node endpoints: the
        # mirror answers placement only, data lives in the daemons.
        # The cache policy matters client-side too: it decides whether
        # successful lookups send CACHE_INSERT shortcuts to the daemons.
        self.service = IndexService(
            self.schema,
            self.scheme,
            self.index_store,
            self.file_store,
            self.transport,
            cache_policy=cache_policy,
            cache_capacity=cache_capacity,
            local_nodes=(),
        )
        self.engine = LookupEngine(
            self.service,
            user=user,
            tracer=tracer,
            pipelined_shortcuts=pipelined,
        )

    def _discover(self, bootstrap: Address) -> dict[int, Address]:
        """Fetch the membership, under an explicit retry/timeout budget.

        Each attempt gets ``discover_timeout_ms`` wall-clock (covering
        the transport's internal retry ladder, which would otherwise
        stretch a dead bootstrap into multiple seconds), and at most
        ``discover_retries`` re-attempts follow before the bounded
        :class:`TransportError` surfaces to the caller.
        """
        request = Message(
            kind=MessageKind.CONTROL,
            source="client",
            destination=daemon_endpoint_name(*bootstrap),
            payload=("members",),
        )
        last_error: Optional[Exception] = None
        for _ in range(self.discover_retries + 1):
            handle = asyncio.run_coroutine_threadsafe(
                asyncio.wait_for(
                    self.transport.request(request),
                    self.discover_timeout_ms / 1000.0,
                ),
                self._loop,
            )
            try:
                response = handle.result()
            except (asyncio.TimeoutError, TransportError, OSError) as error:
                last_error = error
                continue
            assert response is not None and response.payload[0] == "members"
            return dict(
                parse_member(entry) for entry in response.payload[1:]
            )
        raise TransportError(
            f"bootstrap {bootstrap[0]}:{bootstrap[1]} did not answer "
            f"discovery within {self.discover_retries + 1} attempts of "
            f"{self.discover_timeout_ms:.0f}ms each"
        ) from last_error

    # -- data plane ---------------------------------------------------------

    def _daemon_name(self, node_id: int) -> str:
        return daemon_endpoint_name(*self.members[node_id])

    def insert_messages(self, record: Record) -> list[Message]:
        """The wire messages one record's publication fans out into.

        One ``store_file`` per file replica plus one ``INDEX_INSERT``
        per scheme mapping per index replica, each addressed to the
        owning daemon -- the placement decisions of
        :meth:`IndexService.insert_record`, materialized so callers can
        choose how to deliver them (lockstep, batched, or async).
        """
        msd_key = FieldQuery.msd_of(record).key()
        messages = [
            Message(
                kind=MessageKind.CONTROL,
                source=self.engine.user,
                destination=self._daemon_name(node),
                payload=("store_file", msd_key, FILE_MARK),
            )
            for node in self.file_store.responsible_nodes(msd_key)
        ]
        for source, target in self.scheme.mappings_for(record):
            for node in self.index_store.responsible_nodes(source.key()):
                messages.append(
                    Message(
                        kind=MessageKind.INDEX_INSERT,
                        source=self.engine.user,
                        destination=self._daemon_name(node),
                        payload=(source.key(), target.key()),
                    )
                )
        return messages

    def insert_record(self, record: Record) -> FieldQuery:
        """Publish a record into the cluster; returns its MSD.

        Mirrors :meth:`IndexService.insert_record`, but every replica
        placement is one wire message to the owning daemon.  With
        ``pipelined`` (the default) the whole fan-out travels as one
        concurrent batch -- the publication costs one round-trip-time
        instead of one per message.
        """
        messages = self.insert_messages(record)
        if self.pipelined:
            self.transport.send_many(messages)
        else:
            for message in messages:
                self.transport.send(message)
        return FieldQuery.msd_of(record)

    def search(self, query: FieldQuery, target: Record) -> SearchTrace:
        """Covering-chain lookup over the wire (see LookupEngine.search)."""
        return self.engine.search(query, target)

    def ping(self, node_id: int) -> bool:
        """Probe one daemon's control endpoint."""
        response = self.transport.send(
            Message(
                kind=MessageKind.CONTROL,
                source=self.engine.user,
                destination=self._daemon_name(node_id),
                payload=("ping",),
            )
        )
        return response is not None and response.payload[0] == "pong"

    def shutdown_daemon(self, node_id: int) -> None:
        """Ask one daemon to stop (used by the CLI demo and tests)."""
        self.transport.send(
            Message(
                kind=MessageKind.CONTROL,
                source=self.engine.user,
                destination=self._daemon_name(node_id),
                payload=("shutdown",),
            )
        )

    def repair_node(self, node_id: int) -> bool:
        """Ask one daemon to re-sync its data slice with its peers."""
        response = self.transport.send(
            Message(
                kind=MessageKind.CONTROL,
                source=self.engine.user,
                destination=self._daemon_name(node_id),
                payload=("repair",),
            )
        )
        return response is not None and response.payload[0] == "repairing"

    def refresh_members(self, bootstrap: Address) -> None:
        """Re-discover membership and re-point the routes.

        Needed after a daemon restarts on a new port: its node id keeps
        its ring position (so the placement mirror is unchanged), but
        the routes to its endpoints must follow the new address.
        Discovery runs under the same retry/timeout budget as the
        constructor -- and only a *successful* discovery swaps the
        routes, so a dead bootstrap leaves the client's existing view
        intact instead of routeless.
        """
        discovered = self._discover(bootstrap)
        for node_id, address in self.members.items():
            self.transport.remove_route(IndexService.endpoint_name(node_id))
            self.transport.remove_route(daemon_endpoint_name(*address))
        self.members = discovered
        for node_id, address in self.members.items():
            self.transport.add_route(
                IndexService.endpoint_name(node_id), address
            )
            self.transport.add_route(daemon_endpoint_name(*address), address)

    def close(self) -> None:
        """Release the client's socket."""
        asyncio.run_coroutine_threadsafe(
            self.transport.close(), self._loop
        ).result()


class LocalCluster:
    """N node daemons on loopback ports inside one background loop.

    Usable as a context manager::

        with LocalCluster(5, substrate="chord") as cluster:
            client = cluster.client()
            client.insert_record(record)
            trace = client.search(query, record)

    Node ids are seeded deterministically (``cluster-node-<i>``), so the
    overlay layout -- hence replica placement and covering chains -- is
    reproducible across runs; only socket ports and wall-clock latencies
    vary.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        substrate: str = "chord",
        scheme: str = "simple",
        cache: str = "none",
        replication: int = 1,
        bits: int = DEFAULT_BITS,
        host: str = "127.0.0.1",
        request_timeout_ms: float = 250.0,
        max_retries: int = 3,
        data_root: Optional[str] = None,
        fsync: str = "interval",
        signed: bool = False,
    ) -> None:
        """``data_root`` makes the cluster durable: each daemon gets a
        data dir under it (keyed by daemon index, stable across
        restarts), enabling :meth:`kill_node` / :meth:`restart_node`
        crash-recovery cycles.  ``fsync`` is each WAL's sync policy.

        ``signed`` gives every daemon a deterministic ed25519 identity
        and makes the whole cluster require signed frames: each daemon
        signs its traffic and rejects unsigned requests, and
        :meth:`client` hands out signing clients by default.  Node ids
        stay the seeded ``cluster-node-<i>`` values (identities sign;
        they do not re-place the ring), so replica placement is
        identical to an unsigned cluster.
        """
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.substrate = substrate
        self.scheme = scheme
        self.cache = cache
        self.replication = replication
        self.bits = bits
        self.host = host
        self.request_timeout_ms = request_timeout_ms
        self.max_retries = max_retries
        self.data_root = data_root
        self.fsync = fsync
        self.signed = signed
        self.daemons: list[NodeDaemon] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._serving: list = []
        self._dead: set[int] = set()

    @property
    def node_ids(self) -> list[int]:
        """Deterministic node ids, one per daemon index."""
        ids = sorted(
            {
                hash_key(f"cluster-node-{i}", self.bits)
                for i in range(self.num_nodes)
            }
        )
        if len(ids) != self.num_nodes:
            raise RuntimeError("node id collision; increase bits")
        return ids

    def start(self, converge_timeout_s: float = 15.0) -> "LocalCluster":
        """Boot every daemon and wait for full membership convergence."""
        if self._loop is not None:
            raise RuntimeError("cluster already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="local-cluster", daemon=True
        )
        self._thread.start()
        bootstrap: Optional[Address] = None
        for index, node_id in enumerate(self.node_ids):
            daemon = self._build_daemon(index, node_id)
            asyncio.run_coroutine_threadsafe(
                daemon.start(bootstrap), self._loop
            ).result()
            self._serving.append(
                asyncio.run_coroutine_threadsafe(daemon.serve(), self._loop)
            )
            self.daemons.append(daemon)
            if bootstrap is None:
                bootstrap = daemon.address
        deadline = time.monotonic() + converge_timeout_s
        while any(len(d.peers) < self.num_nodes for d in self.daemons):
            if time.monotonic() > deadline:
                raise RuntimeError("cluster membership did not converge")
            time.sleep(0.01)
        return self

    def _build_daemon(self, index: int, node_id: int) -> NodeDaemon:
        data_dir = None
        if self.data_root is not None:
            # Keyed by daemon index, NOT by port: a restarted daemon
            # must find the same directory on its new ephemeral port.
            data_dir = os.path.join(self.data_root, f"daemon-{index}")
        identity = None
        if self.signed:
            # Keyed by daemon index too: a restarted daemon keeps its
            # keypair, so peers' cached pubkey expectations stay valid.
            identity = NodeIdentity(f"cluster-identity-{index}")
        return NodeDaemon(
            self.host,
            0,
            substrate=self.substrate,
            scheme=self.scheme,
            cache=self.cache,
            replication=self.replication,
            bits=self.bits,
            node_id=node_id,
            request_timeout_ms=self.request_timeout_ms,
            max_retries=self.max_retries,
            data_dir=data_dir,
            fsync=self.fsync,
            identity=identity,
            require_signed=self.signed,
        )

    # -- restart / power-loss chaos ------------------------------------------

    def kill_node(self, index: int, power_loss: bool = False) -> None:
        """SIGKILL one daemon: no WAL flush, no goodbye to the peers.

        The daemon's sockets drop and its journal is abandoned exactly
        as the OS would leave them -- everything appended is still in
        the (real) OS, because WAL appends are unbuffered writes.  With
        ``power_loss``, the unsynced tail of the WAL is additionally
        torn mid-record, simulating the machine (not just the process)
        dying; recovery must then truncate the torn tail.
        """
        assert self._loop is not None
        daemon = self.daemons[index]
        if index in self._dead:
            raise RuntimeError(f"daemon {index} is already dead")
        synced = (
            daemon.durable.wal.synced_size
            if daemon.durable is not None
            else 0
        )
        wal_path = (
            daemon.durable.wal_path if daemon.durable is not None else None
        )
        self._loop.call_soon_threadsafe(daemon.kill)
        self._serving[index].result(timeout=10.0)
        if power_loss and wal_path is not None:
            tear_wal(wal_path, synced)
        self._dead.add(index)

    def restart_node(self, index: int, converge_timeout_s: float = 15.0) -> NodeDaemon:
        """Bring a killed daemon back from its data directory.

        The new daemon recovers its identity, entries, cache, and
        membership from the WAL+snapshot, rejoins through a live peer
        (falling back to its remembered peers), re-syncs its data slice,
        and replaces the dead daemon in the harness.  Blocks until the
        recovered daemon is serving and the membership re-converged.
        """
        assert self._loop is not None
        if index not in self._dead:
            raise RuntimeError(f"daemon {index} is not dead; kill it first")
        node_id = self.daemons[index].node_id
        daemon = self._build_daemon(index, node_id)
        bootstrap = next(
            (
                d.address
                for i, d in enumerate(self.daemons)
                if i != index and i not in self._dead
            ),
            None,
        )
        asyncio.run_coroutine_threadsafe(
            daemon.start(bootstrap), self._loop
        ).result(timeout=30.0)
        self._serving[index] = asyncio.run_coroutine_threadsafe(
            daemon.serve(), self._loop
        )
        self.daemons[index] = daemon
        self._dead.discard(index)
        live = [d for i, d in enumerate(self.daemons) if i not in self._dead]
        deadline = time.monotonic() + converge_timeout_s
        while any(len(d.peers) < len(live) for d in live):
            if time.monotonic() > deadline:
                raise RuntimeError("membership did not re-converge")
            time.sleep(0.01)
        return daemon

    def client(self, **overrides) -> ClusterClient:
        """A wire client bootstrapped off daemon 0."""
        assert self._loop is not None and self.daemons
        options = dict(
            substrate=self.substrate,
            scheme=self.scheme,
            cache=self.cache,
            replication=self.replication,
            bits=self.bits,
            request_timeout_ms=self.request_timeout_ms,
            max_retries=self.max_retries,
        )
        if self.signed:
            options["identity"] = NodeIdentity("cluster-client")
            options["require_signed"] = True
            # Membership roster: pin each daemon's endpoint names to its
            # (deterministic, restart-stable) identity key.
            options["peer_keys"] = {
                daemon.node_id: daemon.identity.public_key
                for daemon in self.daemons
                if daemon.identity is not None
            }
        options.update(overrides)
        return ClusterClient(self._loop, self.daemons[0].address, **options)

    def stop(self) -> None:
        """Stop every daemon, then tear the loop down (idempotent)."""
        if self._loop is None:
            return
        for daemon in self.daemons:
            self._loop.call_soon_threadsafe(daemon.stop)
        for handle in self._serving:
            handle.result(timeout=10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=10.0)
        self._loop.close()
        self._loop = None
        self._thread = None
        self._serving = []
        self._dead = set()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
