"""Event-loop selection: optional uvloop acceleration.

uvloop is a drop-in libuv-backed replacement for the stock asyncio
event loop that roughly doubles socket throughput on Linux.  It is an
optional dependency: :func:`install_uvloop` activates it when the
package is importable and degrades to the default loop when it is not,
so the daemon and the load generator accept ``--uvloop`` everywhere
and never hard-require the package.

Installation happens through the event-loop *policy*, so it covers not
just ``asyncio.run`` in the calling process but every
``asyncio.new_event_loop()`` made afterwards -- including the
background loop :class:`~repro.rpc.cluster.LocalCluster` spins up.
"""

from __future__ import annotations

from typing import Optional


def uvloop_module() -> Optional[object]:
    """The imported ``uvloop`` module, or ``None`` when unavailable."""
    try:
        import uvloop
    except ImportError:
        return None
    return uvloop


def uvloop_available() -> bool:
    """Whether the optional ``uvloop`` package is importable."""
    return uvloop_module() is not None


def install_uvloop(*, require: bool = False) -> bool:
    """Switch the asyncio event-loop policy to uvloop if importable.

    Returns ``True`` when uvloop is now the active policy and ``False``
    when the package is missing (the stock loop stays in place).  With
    ``require`` a missing package raises :class:`RuntimeError` instead
    of falling back -- for deployments that must not silently lose the
    throughput headroom they were sized for.
    """
    module = uvloop_module()
    if module is None:
        if require:
            raise RuntimeError(
                "uvloop requested but not importable; install it or "
                "drop the requirement"
            )
        return False
    module.install()
    return True
