"""Versioned wire codec for :class:`repro.net.message.Message`.

The simulation passes ``Message`` objects between Python callables; real
nodes pass bytes between sockets.  This module is the deterministic
translation between the two: every message kind round-trips through
``encode_message`` / ``decode_message`` bit-exactly, and the framing is
explicit enough that the *measured* wire size can be cross-checked
against the payload-derived estimate :attr:`Message.size_bytes` uses for
Figure 12's traffic accounting (see :func:`measured_size_bytes` and
:func:`estimate_delta`).

Frame format (version 1)
========================

Every unit on the wire is one *frame*.  All integers are big-endian and
unsigned; all text is UTF-8.  A frame starts with a fixed 12-byte
envelope::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       2     magic, the bytes "RP" (0x52 0x50)
    2       1     wire version (WIRE_VERSION, currently 1)
    3       1     frame type: 1=REQUEST 2=RESPONSE 3=ACK 4=ERROR
    4       8     request id (u64) correlating a reply with its request

followed by a type-dependent body:

- **REQUEST / RESPONSE** carry one encoded ``Message``::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       1     message kind code (table below)
    1       1     traffic category code: 1=normal 2=cache 3=maintenance
    2       1     flags, bit 0: explicit_size present
    3       2     route_hops (u16, >= 1)
    5       2     source length Ls, then Ls bytes UTF-8
    7+Ls    2     destination length Ld, then Ld bytes UTF-8
    9+Ls+Ld 2     payload entry count N
    ...           N entries, each: u32 byte length + UTF-8 bytes
    [tail]  8     explicit_size (u64), only when flag bit 0 is set

  Kind codes: query_request=1, query_response=2, index_insert=3,
  index_remove=4, cache_insert=5, file_request=6, file_response=7,
  control=8.

- **ACK** has an empty body: the request was delivered and its handler
  produced no response (the wire form of ``handler(message) -> None``;
  without it a UDP sender could not tell "no response" from "lost").

- **ERROR** carries a delivery-failure reason: u16 length + UTF-8 reason
  string (one of the :class:`repro.net.transport.DeliveryError` reasons,
  or the codec-internal ``oversized`` that asks the sender to repeat the
  request over TCP).

Signed frames (version 2)
=========================

A frame may optionally carry an ed25519 signature proving which keypair
produced it (see :mod:`repro.sec`).  Signed frames stamp wire version 2
into the envelope and append a fixed 98-byte trailer after the body::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       1     public key length (must be 32)
    1       32    ed25519 public key
    33      1     signature length (must be 64)
    34      64    ed25519 signature

The signature covers every frame byte up to and including the signature
length marker (envelope, body, public key) -- i.e. ``frame[:-64]`` -- so
neither the request id, the body, nor the claimed key can be swapped
without invalidating it.  REQUEST/RESPONSE bodies inside a signed frame
set flag bit 1 (``_FLAG_SIGNED``); the decoder enforces that the flag
and the trailer agree, and a version-1 decoder rejects the flag as
unknown, so a signed frame can never be replayed down-versioned.  The
codec only checks *structure* (lengths, flag/trailer agreement);
verifying the signature itself is the caller's job via
:func:`repro.sec.verify_signature` over ``SignedEnvelope.signed``.
Unsigned frames keep encoding exactly as version 1, bit-identically.

**Replay is out of scope of the frame format.**  A signed frame carries
no freshness field (no counter, timestamp, or nonce), so a recorded
frame remains a valid signed frame forever.  In practice a replayed
*request* is absorbed by the server's ``(addr, request id)`` dedupe
cache within its TTL/capacity bounds and re-executed past them, and a
replayed *response* is only accepted while its request id is pending --
adding per-peer freshness state would couple the stateless codec to
connection state for an attack the index workload (idempotent inserts,
read-only queries) gives little leverage to.  Deployments that need
replay protection should wrap frames in a channel that provides it.

Transport mapping: a frame travels as one UDP datagram, or over a TCP
stream prefixed with a u32 frame length (``encode_stream`` /
:class:`StreamUnframer`).  Decoding rejects bad magic, unknown versions,
unknown type/kind/category codes, truncated bodies, and trailing bytes
with :class:`CodecError` -- a real socket can deliver garbage, so the
decoder never raises anything else.  Decoders accept ``bytes`` or
``memoryview`` input: the stream unframer hands out zero-copy views
over the receive buffer on its fast path.

Determinism: encoding depends only on the message's fields (no clocks,
no randomness), so equal messages encode to equal bytes and the measured
sizes used by the byte-accounting cross-check are reproducible.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from repro.net.message import Message, MessageKind, TrafficCategory

if TYPE_CHECKING:  # layering: the codec never imports crypto at runtime
    from repro.sec.identity import NodeIdentity

#: Bytes-like frame input: decoders accept either without copying.
Buffer = Union[bytes, memoryview]

#: First bytes of every frame.
MAGIC = b"RP"
#: Wire protocol version stamped into (and required of) every frame.
WIRE_VERSION = 1
#: Wire version of frames carrying the signed-envelope trailer.
WIRE_VERSION_SIGNED = 2

#: Frame types.
FRAME_REQUEST = 1
FRAME_RESPONSE = 2
FRAME_ACK = 3
FRAME_ERROR = 4
_FRAME_TYPES = (FRAME_REQUEST, FRAME_RESPONSE, FRAME_ACK, FRAME_ERROR)

#: Fixed envelope size: magic(2) + version(1) + type(1) + request id(8).
ENVELOPE_BYTES = 12
#: Fixed message-body framing: kind(1) + category(1) + flags(1) +
#: route_hops(2) + source length(2) + destination length(2) + count(2).
MESSAGE_FIXED_BYTES = 11
#: Per-payload-entry framing on the wire: the u32 length prefix.  This
#: deliberately equals ``message.PER_ENTRY_BYTES`` so the estimate and
#: the measurement agree per entry.
WIRE_PER_ENTRY_BYTES = 4

#: Reason string of the codec-internal oversized-response error (not a
#: DeliveryError reason: the transport retries over TCP transparently).
OVERSIZED_REASON = "oversized"

_FLAG_EXPLICIT_SIZE = 0x01
#: Set on message bodies travelling inside a signed (version-2) frame.
#: A version-1 decoder rejects it as an unknown flag bit by design.
_FLAG_SIGNED = 0x02
_KNOWN_FLAGS = _FLAG_EXPLICIT_SIZE | _FLAG_SIGNED

#: Signed-trailer field sizes (ed25519).
SIGNED_PUBKEY_BYTES = 32
SIGNED_SIGNATURE_BYTES = 64
#: Total signed-trailer size: len byte + pubkey + len byte + signature.
SIGNED_TRAILER_BYTES = 1 + SIGNED_PUBKEY_BYTES + 1 + SIGNED_SIGNATURE_BYTES

#: Stable wire codes for every message kind.  New kinds append; existing
#: codes never change (they are the versioned part of the protocol).
KIND_CODES: dict[MessageKind, int] = {
    MessageKind.QUERY_REQUEST: 1,
    MessageKind.QUERY_RESPONSE: 2,
    MessageKind.INDEX_INSERT: 3,
    MessageKind.INDEX_REMOVE: 4,
    MessageKind.CACHE_INSERT: 5,
    MessageKind.FILE_REQUEST: 6,
    MessageKind.FILE_RESPONSE: 7,
    MessageKind.CONTROL: 8,
}
_KINDS_BY_CODE = {code: kind for kind, code in KIND_CODES.items()}

CATEGORY_CODES: dict[TrafficCategory, int] = {
    TrafficCategory.NORMAL: 1,
    TrafficCategory.CACHE: 2,
    TrafficCategory.MAINTENANCE: 3,
}
_CATEGORIES_BY_CODE = {code: cat for cat, code in CATEGORY_CODES.items()}

_U16_MAX = 0xFFFF
_U32_MAX = 0xFFFFFFFF
_U64_MAX = 0xFFFFFFFFFFFFFFFF


class CodecError(ValueError):
    """Raised for any frame the decoder cannot accept (truncated bytes,
    bad magic, unknown version or codes, trailing garbage) and for any
    message the encoder cannot represent (field limits exceeded)."""


# -- message body -----------------------------------------------------------


def encode_message(message: Message, *, signed: bool = False) -> bytes:
    """Serialize one message into a REQUEST/RESPONSE frame body.

    ``signed=True`` sets the signed-flag bit: the body is destined for a
    version-2 frame whose trailer :func:`sign_frame` appends.
    """
    kind_code = KIND_CODES.get(message.kind)
    if kind_code is None:  # pragma: no cover - enum is closed today
        raise CodecError(f"kind has no wire code: {message.kind!r}")
    category_code = CATEGORY_CODES.get(message.category)
    if category_code is None:  # pragma: no cover - enum is closed today
        raise CodecError(f"category has no wire code: {message.category!r}")
    hops = message.route_hops
    if not 1 <= hops <= _U16_MAX:
        raise CodecError(f"route_hops out of wire range [1, 65535]: {hops}")
    source = message.source.encode("utf-8")
    destination = message.destination.encode("utf-8")
    if len(source) > _U16_MAX or len(destination) > _U16_MAX:
        raise CodecError("endpoint name exceeds 65535 UTF-8 bytes")
    if len(message.payload) > _U16_MAX:
        raise CodecError("payload exceeds 65535 entries")
    flags = _FLAG_SIGNED if signed else 0
    if message.explicit_size is not None:
        if not 0 <= message.explicit_size <= _U64_MAX:
            raise CodecError(
                f"explicit_size out of u64 range: {message.explicit_size}"
            )
        flags |= _FLAG_EXPLICIT_SIZE
    parts = [
        struct.pack(
            ">BBBHH", kind_code, category_code, flags, hops, len(source)
        ),
        source,
        struct.pack(">H", len(destination)),
        destination,
        struct.pack(">H", len(message.payload)),
    ]
    for entry in message.payload:
        data = entry.encode("utf-8")
        if len(data) > _U32_MAX:
            raise CodecError("payload entry exceeds u32 byte length")
        parts.append(struct.pack(">I", len(data)))
        parts.append(data)
    if message.explicit_size is not None:
        parts.append(struct.pack(">Q", message.explicit_size))
    return b"".join(parts)


class _Reader:
    """Bounds-checked cursor over a frame body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: Buffer) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> Buffer:
        end = self.pos + count
        if end > len(self.data):
            raise CodecError(
                f"truncated frame: wanted {count} bytes at offset "
                f"{self.pos}, have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self.take(2), "big")

    def u32(self) -> int:
        return int.from_bytes(self.take(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self.take(8), "big")

    def text(self, count: int) -> str:
        try:
            # str(buffer, encoding) decodes bytes and memoryview alike.
            return str(self.take(count), "utf-8")
        except UnicodeDecodeError as error:
            raise CodecError(f"invalid UTF-8 in frame: {error}") from None

    def done(self) -> None:
        if self.pos != len(self.data):
            raise CodecError(
                f"{len(self.data) - self.pos} trailing bytes after frame body"
            )


def decode_message(body: Buffer, *, signed: bool = False) -> Message:
    """Parse a REQUEST/RESPONSE frame body back into a message.

    ``signed`` states whether the enclosing frame carried the version-2
    signature trailer; the body's signed-flag bit must agree, so a
    trailer cannot be stripped from (or bolted onto) a body unnoticed.
    In the default unsigned mode the signed flag is simply unknown --
    exactly the version-1 decoder behavior.
    """
    reader = _Reader(body)
    kind_code = reader.u8()
    kind = _KINDS_BY_CODE.get(kind_code)
    if kind is None:
        raise CodecError(f"unknown message kind code: {kind_code}")
    category_code = reader.u8()
    category = _CATEGORIES_BY_CODE.get(category_code)
    if category is None:
        raise CodecError(f"unknown traffic category code: {category_code}")
    flags = reader.u8()
    known = _KNOWN_FLAGS if signed else _FLAG_EXPLICIT_SIZE
    if flags & ~known:
        raise CodecError(f"unknown flag bits set: {flags:#x}")
    if signed and not flags & _FLAG_SIGNED:
        raise CodecError("signed frame carries a body without the signed flag")
    hops = reader.u16()
    if hops < 1:
        raise CodecError("route_hops must be >= 1 on the wire")
    source = reader.text(reader.u16())
    destination = reader.text(reader.u16())
    count = reader.u16()
    payload = tuple(reader.text(reader.u32()) for _ in range(count))
    explicit_size = reader.u64() if flags & _FLAG_EXPLICIT_SIZE else None
    reader.done()
    return Message(
        kind=kind,
        source=source,
        destination=destination,
        payload=payload,
        explicit_size=explicit_size,
        route_hops=hops,
        category=category,
    )


# -- envelope ---------------------------------------------------------------


def encode_frame(frame_type: int, request_id: int, body: bytes = b"") -> bytes:
    """Wrap a body in the 12-byte envelope."""
    if frame_type not in _FRAME_TYPES:
        raise CodecError(f"unknown frame type: {frame_type}")
    if not 0 <= request_id <= _U64_MAX:
        raise CodecError(f"request id out of u64 range: {request_id}")
    return MAGIC + bytes((WIRE_VERSION, frame_type)) + request_id.to_bytes(
        8, "big"
    ) + body


@dataclass(frozen=True)
class SignedEnvelope:
    """The signature trailer of a version-2 frame, structurally valid.

    ``signed`` is the exact byte span the signature covers
    (``frame[:-64]``); pass the triple to
    :func:`repro.sec.verify_signature` to check authenticity.
    """

    public_key: bytes
    signature: bytes
    signed: bytes


def sign_frame(
    frame_type: int,
    request_id: int,
    body: bytes,
    identity: "NodeIdentity",
) -> bytes:
    """Build a version-2 frame signed by ``identity``.

    REQUEST/RESPONSE bodies must have been encoded with
    ``encode_message(..., signed=True)`` so the flag bit matches the
    trailer; ACK/ERROR bodies carry no flags and sign as-is.
    """
    if frame_type not in _FRAME_TYPES:
        raise CodecError(f"unknown frame type: {frame_type}")
    if not 0 <= request_id <= _U64_MAX:
        raise CodecError(f"request id out of u64 range: {request_id}")
    if len(identity.public_key) != SIGNED_PUBKEY_BYTES:
        raise CodecError(
            f"public key must be {SIGNED_PUBKEY_BYTES} bytes, "
            f"got {len(identity.public_key)}"
        )
    span = (
        MAGIC
        + bytes((WIRE_VERSION_SIGNED, frame_type))
        + request_id.to_bytes(8, "big")
        + body
        + bytes((SIGNED_PUBKEY_BYTES,))
        + identity.public_key
        + bytes((SIGNED_SIGNATURE_BYTES,))
    )
    signature = identity.sign(span)
    if len(signature) != SIGNED_SIGNATURE_BYTES:  # pragma: no cover - defense
        raise CodecError(
            f"signature must be {SIGNED_SIGNATURE_BYTES} bytes, "
            f"got {len(signature)}"
        )
    return span + signature


def decode_frame_signed(
    data: Buffer,
) -> tuple[int, int, Buffer, Optional[SignedEnvelope]]:
    """Split a frame into ``(frame_type, request_id, body, envelope)``.

    Version-1 frames return ``envelope=None``; version-2 frames have
    their 98-byte trailer bounds-checked (exact length markers, nothing
    left over for the body to go negative) and stripped, with the
    envelope carrying the public key, the signature, and the signed
    span.  The body is *not* parsed here -- REQUEST/RESPONSE bodies go
    through :func:`decode_message`, ERROR bodies through
    :func:`decode_error` -- and the signature is *not* verified here:
    the codec has no crypto, only structure.
    """
    if len(data) < ENVELOPE_BYTES:
        raise CodecError(
            f"truncated envelope: {len(data)} < {ENVELOPE_BYTES} bytes"
        )
    if data[:2] != MAGIC:
        raise CodecError(f"bad magic: {bytes(data[:2])!r}")
    version = data[2]
    if version not in (WIRE_VERSION, WIRE_VERSION_SIGNED):
        raise CodecError(
            f"unsupported wire version {version} (speak {WIRE_VERSION} "
            f"or {WIRE_VERSION_SIGNED})"
        )
    frame_type = data[3]
    if frame_type not in _FRAME_TYPES:
        raise CodecError(f"unknown frame type: {frame_type}")
    request_id = int.from_bytes(data[4:12], "big")
    if version == WIRE_VERSION:
        return frame_type, request_id, data[ENVELOPE_BYTES:], None
    if len(data) < ENVELOPE_BYTES + SIGNED_TRAILER_BYTES:
        raise CodecError(
            f"truncated signed trailer: frame of {len(data)} bytes cannot "
            f"hold envelope + {SIGNED_TRAILER_BYTES}-byte trailer"
        )
    trailer_at = len(data) - SIGNED_TRAILER_BYTES
    if data[trailer_at] != SIGNED_PUBKEY_BYTES:
        raise CodecError(
            f"bad public key length marker: {data[trailer_at]} "
            f"(must be {SIGNED_PUBKEY_BYTES})"
        )
    sig_len_at = trailer_at + 1 + SIGNED_PUBKEY_BYTES
    if data[sig_len_at] != SIGNED_SIGNATURE_BYTES:
        raise CodecError(
            f"bad signature length marker: {data[sig_len_at]} "
            f"(must be {SIGNED_SIGNATURE_BYTES})"
        )
    envelope = SignedEnvelope(
        public_key=bytes(data[trailer_at + 1:sig_len_at]),
        signature=bytes(data[sig_len_at + 1:]),
        signed=bytes(data[:sig_len_at + 1]),
    )
    return frame_type, request_id, data[ENVELOPE_BYTES:trailer_at], envelope


def decode_frame(data: Buffer) -> tuple[int, int, Buffer]:
    """Split a frame into ``(frame_type, request_id, body)``.

    Accepts both wire versions, discarding the signature trailer of a
    version-2 frame after the structural checks; callers that care who
    signed use :func:`decode_frame_signed` instead.
    """
    frame_type, request_id, body, _ = decode_frame_signed(data)
    return frame_type, request_id, body


def encode_error(reason: str) -> bytes:
    """Serialize an ERROR frame body (u16 length + UTF-8 reason)."""
    data = reason.encode("utf-8")
    if len(data) > _U16_MAX:
        raise CodecError("error reason exceeds 65535 UTF-8 bytes")
    return struct.pack(">H", len(data)) + data


def decode_error(body: bytes) -> str:
    """Parse an ERROR frame body back into its reason string."""
    reader = _Reader(body)
    reason = reader.text(reader.u16())
    reader.done()
    return reason


# -- stream framing (TCP) ---------------------------------------------------

#: Size of the frame-length prefix on stream transports.
STREAM_PREFIX_BYTES = 4


def encode_stream(frame: bytes) -> bytes:
    """Prefix a frame with its u32 length for a stream transport."""
    if len(frame) > _U32_MAX:
        raise CodecError("frame exceeds u32 stream length")
    return len(frame).to_bytes(STREAM_PREFIX_BYTES, "big") + frame


class StreamUnframer:
    """Incremental splitter of a byte stream into frames.

    Feed arbitrary chunks; complete frames come back in order.  TCP may
    deliver half a frame or three at once -- this class owns the
    reassembly buffer so the transport code never slices bytes itself.

    Zero-copy fast path: when nothing is buffered (the overwhelmingly
    common case -- most reads start on a frame boundary), every complete
    frame comes back as a :class:`memoryview` over the chunk the caller
    passed in, with no bytes copied; only a trailing partial frame is
    copied into the reassembly buffer.  The views pin the source chunk
    alive until the caller drops them, which decoders do within the same
    receive callback.  The slow path (resuming a split frame) still
    copies, as it must.
    """

    def __init__(self, max_frame_bytes: int = 64 * 1024 * 1024) -> None:
        self._buffer = bytearray()
        self._max = max_frame_bytes

    def feed(self, data: bytes) -> list[Buffer]:
        """Append stream bytes; return every frame completed by them."""
        frames: list[Buffer] = []
        if not self._buffer:
            view = memoryview(data)
            size = len(view)
            pos = 0
            while size - pos >= STREAM_PREFIX_BYTES:
                length = int.from_bytes(
                    view[pos:pos + STREAM_PREFIX_BYTES], "big"
                )
                if length > self._max:
                    raise CodecError(
                        f"stream frame of {length} bytes exceeds "
                        f"limit {self._max}"
                    )
                end = pos + STREAM_PREFIX_BYTES + length
                if end > size:
                    break
                frames.append(view[pos + STREAM_PREFIX_BYTES:end])
                pos = end
            if pos < size:
                self._buffer.extend(view[pos:])
            return frames
        self._buffer.extend(data)
        while len(self._buffer) >= STREAM_PREFIX_BYTES:
            length = int.from_bytes(self._buffer[:STREAM_PREFIX_BYTES], "big")
            if length > self._max:
                raise CodecError(
                    f"stream frame of {length} bytes exceeds limit {self._max}"
                )
            end = STREAM_PREFIX_BYTES + length
            if len(self._buffer) < end:
                break
            frames.append(bytes(self._buffer[STREAM_PREFIX_BYTES:end]))
            del self._buffer[:end]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)


# -- size accounting --------------------------------------------------------


def measured_size_bytes(message: Message) -> int:
    """The real number of bytes this message occupies on the wire.

    Counts the full frame -- envelope plus encoded body -- as sent in
    one UDP datagram (the stream length prefix of the TCP path is
    excluded: it is transport framing, not message content).  The
    traffic layer can cross-check this measurement against the estimate
    :attr:`Message.size_bytes` computes; :func:`estimate_delta` gives
    the exact difference.
    """
    return ENVELOPE_BYTES + len(encode_message(message))


def estimate_delta(message: Message) -> int:
    """Exact gap between the measured and the estimated size.

    For a payload-derived message (``explicit_size is None``)::

        measured - estimated = (ENVELOPE_BYTES + MESSAGE_FIXED_BYTES
                                - HEADER_BYTES)
                               + len(utf8(source)) + len(utf8(destination))

    i.e. a fixed framing delta of 7 bytes plus the endpoint names the
    estimate deliberately ignores (they are simulation-local).  With an
    explicit size the flag tail adds 8 more bytes -- but then
    ``size_bytes`` returns the caller's figure (a file's article size),
    which the wire size of the *descriptor* is unrelated to, so the
    cross-check only binds the payload-derived case.  A tier-1 test
    asserts ``measured_size_bytes(m) == m.size_bytes + estimate_delta(m)``
    for payload-derived messages of every kind.
    """
    from repro.net.message import HEADER_BYTES

    fixed = ENVELOPE_BYTES + MESSAGE_FIXED_BYTES - HEADER_BYTES
    names = len(message.source.encode("utf-8")) + len(
        message.destination.encode("utf-8")
    )
    tail = 8 if message.explicit_size is not None else 0
    return fixed + names + tail
