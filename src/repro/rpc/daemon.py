"""One index node as a long-running socket daemon.

A :class:`NodeDaemon` hosts a single substrate node -- its DHT routing
state, its slice of the index and file stores, and its shortcut cache --
behind an :class:`~repro.rpc.transport.AsyncioTransport` listening on one
UDP+TCP port.  A population of daemons (one process each, or many in one
loop via :class:`repro.rpc.cluster.LocalCluster`) is the networked
counterpart of the simulation's single-process overlay: the same
:class:`~repro.core.service.IndexService` code answers the same
:class:`~repro.net.message.Message` kinds, only now they arrive off the
wire.

Each daemon exposes two endpoints:

- ``node:<id:x>`` -- the index node itself, registered by the service
  (QUERY_REQUEST / FILE_REQUEST / CACHE_INSERT), exactly as in the
  simulation;
- ``daemon@host:port`` -- the *control* endpoint this module adds, which
  carries data placement and membership:

  ========================  =============================================
  message                   effect
  ========================  =============================================
  INDEX_INSERT (k, v)       store one index-mapping replica locally
  CONTROL (store_file,k,v)  store one file replica locally
  CONTROL (ping,)           liveness probe; replies (pong, <id:x>)
  CONTROL (members,)        replies (members, <id:x>@host:port, ...)
  CONTROL (join,id,addr)    admit a node; reply members; notify peers
  CONTROL (joined,id,addr)  peer notification of an admission
  CONTROL (stats,)          index/file entry counts and peer count
  CONTROL (pull,id)         entries held here that node ``id`` should hold
  CONTROL (repair,)         re-sync local entries with the peers
  CONTROL (shutdown,)       replies (bye,) and stops the daemon
  ========================  =============================================

Placement stays a *sender-side* decision: an insert arrives as one
message per replica, addressed to the daemon that must hold it, and is
applied with :meth:`repro.storage.store.DHTStorage.put_local`.  Lookups
need no daemon-side logic at all -- they are addressed to the ``node:``
endpoint and served by the unmodified service handlers.

Membership is deliberately minimal (a full-mesh member list seeded
through one bootstrap daemon): enough to run real multi-process
overlays and exercise over-the-wire joins, while the churn/stabilization
machinery stays the simulation's domain.

With ``data_dir`` set, the daemon is *durable*
(:mod:`repro.storage.durable`): every index insert, file replica,
shortcut-cache insert, and membership change is journaled to a
write-ahead log before it is acknowledged, and a restart recovers the
node -- same identity, same entries, same warmed cache, same membership
view -- by replaying snapshot + log tail.  After recovery the daemon
rejoins via its remembered peers and re-synchronizes its slice of the
data (``pull``/``repair``), so entries written to its keys while it was
down arrive as well.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.core.cache import CachePolicy
from repro.core.fields import ARTICLE_SCHEMA, Schema
from repro.core.scheme import (
    IndexScheme,
    complex_scheme,
    flat_scheme,
    simple_scheme,
)
from repro.core.service import IndexService
from repro.dht import (
    DEFAULT_BITS,
    CANNetwork,
    ChordNetwork,
    DHTProtocol,
    IdealRing,
    KademliaNetwork,
    PastryNetwork,
    hash_key,
)
from repro.net.message import Message, MessageKind
from repro.net.transport import DeliveryError, TransportError
from repro.rpc.transport import (
    Address,
    AsyncioTransport,
    daemon_endpoint_name,
)
from repro.sec import NodeIdentity
from repro.storage.durable import DurableNodeState, RecoveryReport
from repro.storage.store import DHTStorage

#: Names accepted by ``--substrate`` / :func:`build_substrate`.
SUBSTRATES = ("ideal", "chord", "kademlia", "pastry", "can")
#: Names accepted by ``--scheme`` / :func:`build_scheme`.
SCHEMES = ("simple", "flat", "complex")


def build_substrate(
    name: str, node_ids: list[int], bits: int = DEFAULT_BITS
) -> DHTProtocol:
    """One overlay instance of the named substrate over ``node_ids``."""
    if name == "ideal":
        ring = IdealRing(bits)
        for node_id in node_ids:
            ring.add_node(node_id)
        return ring
    if name == "chord":
        return ChordNetwork.bulk_build(node_ids, bits=bits)
    if name == "kademlia":
        return KademliaNetwork.bulk_build(node_ids, bits=bits)
    if name == "pastry":
        return PastryNetwork.bulk_build(node_ids, bits=bits)
    if name == "can":
        return CANNetwork.bulk_build(node_ids, bits=bits)
    raise ValueError(f"unknown substrate: {name!r}")


def build_scheme(name: str, schema: Schema) -> IndexScheme:
    """The named index scheme from the paper's evaluation."""
    if name == "simple":
        return simple_scheme(schema)
    if name == "flat":
        return flat_scheme(schema)
    if name == "complex":
        return complex_scheme(schema)
    raise ValueError(f"unknown scheme: {name!r}")


def format_member(node_id: int, address: Address) -> str:
    """Wire form of one membership entry: ``<id:x>@host:port``."""
    return f"{node_id:x}@{address[0]}:{address[1]}"


def parse_member(entry: str) -> tuple[int, Address]:
    """Inverse of :func:`format_member`."""
    id_text, _, location = entry.partition("@")
    host, _, port_text = location.rpartition(":")
    return int(id_text, 16), (host, int(port_text))


class NodeDaemon:
    """One substrate node served over real sockets.

    Construct, then ``await start()`` on the event loop that should own
    the sockets; ``await serve()`` blocks until :meth:`stop` (or an
    over-the-wire shutdown) fires.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        substrate: str = "chord",
        scheme: str = "simple",
        cache: str = "none",
        replication: int = 1,
        bits: int = DEFAULT_BITS,
        node_id: Optional[int] = None,
        schema: Optional[Schema] = None,
        request_timeout_ms: float = 250.0,
        max_retries: int = 3,
        data_dir: Optional[str] = None,
        fsync: str = "interval",
        identity_dir: Optional[str] = None,
        identity: Optional[NodeIdentity] = None,
        require_signed: bool = False,
    ) -> None:
        """``data_dir`` switches the daemon to durable mode: node state
        persists there (WAL + snapshot) and a restart recovers it.
        ``fsync`` is the log's sync policy (``always`` / ``interval[:N]``
        / ``never``; see :class:`repro.storage.durable.FsyncPolicy`).

        ``identity_dir`` gives the daemon a persistent ed25519 keypair
        (created on first start, reloaded forever after -- the same
        load-or-create contract as the durable state): frames are
        signed, incoming signed frames verified, and -- absent an
        explicit ``node_id`` or recovered identity -- the node id is
        derived from the public key, so a node cannot choose its ring
        position independently of a key it can sign with.  ``identity``
        passes a ready-made keypair instead (in-process clusters);
        ``require_signed`` additionally rejects unsigned peers."""
        self.host = host
        self.requested_port = port
        self.substrate_name = substrate
        self.scheme_name = scheme
        self.bits = bits
        self.replication = replication
        self.schema = schema if schema is not None else ARTICLE_SCHEMA
        self.cache_policy, self.cache_capacity = CachePolicy.parse(cache)
        self._explicit_node_id = node_id
        self.node_id: int = 0
        if identity_dir is not None and identity is not None:
            raise ValueError("give identity_dir or identity, not both")
        self.identity: Optional[NodeIdentity] = identity
        if identity_dir is not None:
            self.identity = NodeIdentity.load_or_create(identity_dir)
        self.transport = AsyncioTransport(
            request_timeout_ms=request_timeout_ms,
            max_retries=max_retries,
            identity=self.identity,
            require_signed=require_signed,
        )
        #: Known members, self included: node id -> daemon address.
        self.peers: dict[int, Address] = {}
        self.protocol: Optional[DHTProtocol] = None
        self.index_store: Optional[DHTStorage] = None
        self.file_store: Optional[DHTStorage] = None
        self.service: Optional[IndexService] = None
        self.data_dir = data_dir
        self.fsync = fsync
        #: The durability journal (durable mode only; see serve()/kill()).
        self.durable: Optional[DurableNodeState] = None
        #: What the last start() recovered from disk (durable mode only).
        self.recovery: Optional[RecoveryReport] = None
        self._killed = False
        self._stopping = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Address:
        """The bound listen address (valid after :meth:`start`)."""
        assert self.transport.listen_address is not None
        return self.transport.listen_address

    @property
    def control_name(self) -> str:
        """This daemon's control endpoint name."""
        return daemon_endpoint_name(*self.address)

    async def start(self, bootstrap: Optional[Address] = None) -> Address:
        """Bind the sockets, build the node, and (optionally) join.

        With a ``bootstrap`` address, membership is fetched over the
        wire from that daemon and the join is broadcast to the overlay;
        without one, this daemon seeds a new single-node overlay.
        Returns the bound address.
        """
        address = await self.transport.start(self.host, self.requested_port)
        assert address is not None
        host, port = address
        if self.data_dir is not None:
            self.durable = DurableNodeState(self.data_dir, fsync=self.fsync)
            self.recovery = self.durable.report
        recovered_id = (
            self.durable.state.node_id if self.durable is not None else None
        )
        # Identity priority: explicit argument, then the recovered
        # identity (a restarted daemon must keep its ring position even
        # on a new ephemeral port), then the keypair-derived id (the
        # ring position is bound to a key the node can sign with), then
        # the address hash.
        if self._explicit_node_id is not None:
            self.node_id = self._explicit_node_id
        elif recovered_id is not None:
            self.node_id = recovered_id
        elif self.identity is not None:
            self.node_id = self.identity.node_id(self.bits)
        else:
            self.node_id = hash_key(f"{host}:{port}", self.bits)
        self.protocol = build_substrate(
            self.substrate_name, [self.node_id], self.bits
        )
        self.index_store = DHTStorage(self.protocol, replication=self.replication)
        self.file_store = DHTStorage(self.protocol, replication=self.replication)
        self.service = IndexService(
            self.schema,
            build_scheme(self.scheme_name, self.schema),
            self.index_store,
            self.file_store,
            self.transport,
            cache_policy=self.cache_policy,
            cache_capacity=self.cache_capacity,
            local_nodes={self.node_id},
        )
        self.peers[self.node_id] = address
        self.transport.register(self.control_name, self._handle_control)
        recovered_peers: list[tuple[int, Address]] = []
        if self.durable is not None:
            recovered_peers = self._restore_durable_state()
        if bootstrap is not None:
            await self._join(bootstrap)
        elif recovered_peers:
            await self._rejoin(recovered_peers)
        if self.durable is not None and len(self.peers) > 1:
            await self._sync_with_peers()
        return address

    def _restore_durable_state(self) -> list[tuple[int, Address]]:
        """Re-apply recovered state to the fresh in-memory node.

        The recovered entries come *from* the journal, so they are
        applied with journaling suppressed -- replaying must not re-log
        (the seq watermark plus idempotent application is what keeps
        repeated restarts from growing the WAL or the stores).  Returns
        the remembered peers to try rejoining through.
        """
        assert self.durable is not None
        assert self.index_store is not None and self.file_store is not None
        assert self.service is not None
        state = self.durable.state
        self.durable.replaying = True
        try:
            self.index_store.replay_entries(
                self.node_id, state.entries("index")
            )
            self.file_store.replay_entries(
                self.node_id, state.entries("file")
            )
            cache = self.service.caches.get(self.node_id)
            if cache is not None:
                for query_key, targets in state.cache.items():
                    for msd_key in targets:
                        cache.insert(query_key, msd_key)
            recovered_peers = [
                (node_id, peer_address)
                for node_id, peer_address in sorted(state.peers.items())
                if node_id != self.node_id
            ]
        finally:
            self.durable.replaying = False
        # Journal this life's identity and address (no-ops when they
        # match the recovered state).
        self.index_store.attach_journal(self.durable, "index")
        self.file_store.attach_journal(self.durable, "file")
        self.service.journal = self.durable
        self.durable.record_identity(self.node_id)
        self.durable.record_member(self.node_id, *self.address)
        return recovered_peers

    async def _rejoin(self, recovered_peers: list[tuple[int, Address]]) -> None:
        """Try the remembered peers until one admits us back.

        A peer that moved or is still down is skipped; if every one is
        unreachable the daemon seeds alone (exactly what a real node can
        do after a full-cluster outage) and peers re-merge via their own
        rejoins.
        """
        for _, peer_address in recovered_peers:
            if peer_address == self.address:
                continue
            try:
                await self._join(peer_address)
                return
            except (DeliveryError, TransportError, OSError, AssertionError):
                continue

    async def serve(self) -> None:
        """Block until the daemon is asked to stop, then shut down.

        A graceful stop (SIGTERM, the ``shutdown`` verb, :meth:`stop`)
        flushes and fsyncs the write-ahead log *before* the sockets come
        down and before the caller's post-``serve()`` code (the CLI's
        final ``SHUTDOWN`` line) runs -- an acknowledged entry is on
        disk by the time the daemon reports itself gone.  A :meth:`kill`
        skips the flush: that is the SIGKILL path.
        """
        await self._stopping.wait()
        if self.durable is not None:
            if self._killed:
                self.durable.abandon()
            else:
                self.durable.close()
        await self.transport.close()

    def stop(self) -> None:
        """Request a graceful shutdown (idempotent, loop-thread safe)."""
        self._stopping.set()

    def kill(self) -> None:
        """Stop WITHOUT flushing the journal -- in-process SIGKILL.

        The cluster harness uses this to model a daemon that dies
        mid-write: the WAL keeps exactly what the OS already had
        (unbuffered appends), nothing more.  Real-SIGKILL coverage of
        the subprocess daemon lives in the CLI tests.
        """
        self._killed = True
        self._stopping.set()

    async def _join(self, bootstrap: Address) -> None:
        """Fetch membership from the bootstrap daemon and announce us."""
        request = Message(
            kind=MessageKind.CONTROL,
            source=self.control_name,
            destination=daemon_endpoint_name(*bootstrap),
            payload=(
                "join",
                f"{self.node_id:x}",
                f"{self.address[0]}:{self.address[1]}",
            ),
        )
        response = await self.transport.request(request)
        assert response is not None and response.payload[0] == "members"
        for entry in response.payload[1:]:
            self._apply_member(*parse_member(entry))

    # -- membership ---------------------------------------------------------

    def _apply_member(self, node_id: int, address: Address) -> None:
        """Admit or re-address one member in the local view (idempotent).

        A known node id announcing a *new* address is a restarted peer
        that came back on a different port: its routes are re-pointed
        (the ring position is unchanged, so no storage moves).
        """
        if node_id == self.node_id:
            return
        assert self.protocol is not None and self.service is not None
        known = self.peers.get(node_id)
        if known == address:
            return
        self.peers[node_id] = address
        if known is None:
            self.protocol.add_node(node_id)
        else:
            self.transport.remove_route(daemon_endpoint_name(*known))
        self.transport.add_route(IndexService.endpoint_name(node_id), address)
        self.transport.add_route(daemon_endpoint_name(*address), address)
        if self.durable is not None:
            self.durable.record_member(node_id, *address)
        # register_nodes is restricted to local_nodes, so this only
        # refreshes bookkeeping -- remote node names stay routed.
        self.service.register_nodes()

    def _members_payload(self) -> tuple[str, ...]:
        return ("members",) + tuple(
            format_member(node_id, address)
            for node_id, address in sorted(self.peers.items())
        )

    def _broadcast_joined(self, node_id: int, address: Address) -> None:
        """Fire-and-forget join notification to every other peer."""
        entry_id, entry_address = node_id, address
        for peer_id, peer_address in list(self.peers.items()):
            if peer_id in (self.node_id, entry_id):
                continue
            notice = Message(
                kind=MessageKind.CONTROL,
                source=self.control_name,
                destination=daemon_endpoint_name(*peer_address),
                payload=(
                    "joined",
                    f"{entry_id:x}",
                    f"{entry_address[0]}:{entry_address[1]}",
                ),
            )
            self.transport.send_async(
                notice, lambda response: None, lambda error: None
            )

    # -- re-replication -----------------------------------------------------

    #: Upper bound on entries one ``pull`` response carries; a node with
    #: more outstanding entries syncs the rest on the next repair pass.
    PULL_LIMIT = 30_000

    def _pull_payload(self, requester: int) -> tuple[str, ...]:
        """Entries held here that ``requester`` is responsible for.

        Flat ``(store, key, value)`` triples after the ``entries`` tag,
        with ``store`` "i" (index) or "f" (file) -- what a restarted
        peer needs to repair the writes it missed while down.
        """
        assert self.index_store is not None and self.file_store is not None
        items: list[str] = []
        for code, store in (("i", self.index_store), ("f", self.file_store)):
            for key, values in store.items_at(self.node_id):
                if requester not in store.responsible_nodes(key):
                    continue
                for value in values:
                    items.extend((code, key, value))
                    if len(items) >= 3 * self.PULL_LIMIT:
                        return ("entries",) + tuple(items)
        return ("entries",) + tuple(items)

    async def _sync_with_peers(self) -> tuple[int, int]:
        """Repair this node's slice of the data against the peers.

        Two directions: **pull** asks every peer for entries this node
        is responsible for but may have missed (writes acknowledged by
        the other replicas while this daemon was down), and **push**
        re-offers locally held entries to the other responsible replicas
        (repairing peers that lost *their* copies).  Both directions are
        idempotent (``put_local`` deduplicates), so repeated repair
        passes converge.  Returns ``(entries_pulled, entries_pushed)``.
        """
        assert self.index_store is not None and self.file_store is not None
        stores = {"i": self.index_store, "f": self.file_store}
        pulled = pushed = 0
        for peer_id, peer_address in sorted(self.peers.items()):
            if peer_id == self.node_id:
                continue
            request = Message(
                kind=MessageKind.CONTROL,
                source=self.control_name,
                destination=daemon_endpoint_name(*peer_address),
                payload=("pull", f"{self.node_id:x}"),
            )
            try:
                response = await self.transport.request(request)
            except (DeliveryError, TransportError, OSError):
                continue
            if response is None or response.payload[:1] != ("entries",):
                continue
            flat = response.payload[1:]
            for index in range(0, len(flat) - 2, 3):
                code, key, value = flat[index:index + 3]
                store = stores.get(code)
                if store is None:
                    continue
                if value not in store.values_at(self.node_id, key):
                    store.put_local(self.node_id, key, value)
                    pulled += 1
        for code, store in stores.items():
            kind = (
                MessageKind.INDEX_INSERT if code == "i" else MessageKind.CONTROL
            )
            for key, values in store.items_at(self.node_id):
                for replica in store.responsible_nodes(key):
                    if replica == self.node_id or replica not in self.peers:
                        continue
                    name = daemon_endpoint_name(*self.peers[replica])
                    for value in values:
                        payload = (
                            (key, value)
                            if code == "i"
                            else ("store_file", key, value)
                        )
                        offer = Message(
                            kind=kind,
                            source=self.control_name,
                            destination=name,
                            payload=payload,
                        )
                        try:
                            await self.transport.request(offer)
                            pushed += 1
                        except (DeliveryError, TransportError, OSError):
                            break
        return pulled, pushed

    # -- control endpoint ---------------------------------------------------

    def _handle_control(self, message: Message) -> Optional[Message]:
        if message.kind is MessageKind.INDEX_INSERT:
            assert self.index_store is not None
            key, value = message.payload
            self.index_store.put_local(self.node_id, key, value)
            return None
        if message.kind is not MessageKind.CONTROL or not message.payload:
            return message.reply(MessageKind.CONTROL, ("error", "bad-request"))
        verb, *rest = message.payload
        if verb == "store_file":
            assert self.file_store is not None
            key, value = rest
            self.file_store.put_local(self.node_id, key, value)
            return None
        if verb == "ping":
            return message.reply(
                MessageKind.CONTROL, ("pong", f"{self.node_id:x}")
            )
        if verb == "members":
            return message.reply(MessageKind.CONTROL, self._members_payload())
        if verb == "join":
            node_id, address = parse_member(f"{rest[0]}@{rest[1]}")
            self._broadcast_joined(node_id, address)
            self._apply_member(node_id, address)
            return message.reply(MessageKind.CONTROL, self._members_payload())
        if verb == "joined":
            node_id, address = parse_member(f"{rest[0]}@{rest[1]}")
            self._apply_member(node_id, address)
            return None
        if verb == "stats":
            assert self.index_store is not None and self.file_store is not None
            return message.reply(
                MessageKind.CONTROL,
                (
                    "stats",
                    str(self.index_store.entries_on_node(self.node_id)),
                    str(self.file_store.entries_on_node(self.node_id)),
                    str(len(self.peers)),
                ),
            )
        if verb == "pull":
            return message.reply(
                MessageKind.CONTROL, self._pull_payload(int(rest[0], 16))
            )
        if verb == "repair":
            # The sync needs the loop (it awaits peer exchanges), so it
            # runs as a task; callers poll `stats` or just look up --
            # both converge once the task lands.
            asyncio.get_running_loop().create_task(self._sync_with_peers())
            return message.reply(MessageKind.CONTROL, ("repairing",))
        if verb == "shutdown":
            loop = asyncio.get_running_loop()
            loop.call_soon(self.stop)
            return message.reply(MessageKind.CONTROL, ("bye",))
        return message.reply(MessageKind.CONTROL, ("error", f"unknown:{verb}"))
