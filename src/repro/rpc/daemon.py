"""One index node as a long-running socket daemon.

A :class:`NodeDaemon` hosts a single substrate node -- its DHT routing
state, its slice of the index and file stores, and its shortcut cache --
behind an :class:`~repro.rpc.transport.AsyncioTransport` listening on one
UDP+TCP port.  A population of daemons (one process each, or many in one
loop via :class:`repro.rpc.cluster.LocalCluster`) is the networked
counterpart of the simulation's single-process overlay: the same
:class:`~repro.core.service.IndexService` code answers the same
:class:`~repro.net.message.Message` kinds, only now they arrive off the
wire.

Each daemon exposes two endpoints:

- ``node:<id:x>`` -- the index node itself, registered by the service
  (QUERY_REQUEST / FILE_REQUEST / CACHE_INSERT), exactly as in the
  simulation;
- ``daemon@host:port`` -- the *control* endpoint this module adds, which
  carries data placement and membership:

  ========================  =============================================
  message                   effect
  ========================  =============================================
  INDEX_INSERT (k, v)       store one index-mapping replica locally
  CONTROL (store_file,k,v)  store one file replica locally
  CONTROL (ping,)           liveness probe; replies (pong, <id:x>)
  CONTROL (members,)        replies (members, <id:x>@host:port, ...)
  CONTROL (join,id,addr)    admit a node; reply members; notify peers
  CONTROL (joined,id,addr)  peer notification of an admission
  CONTROL (stats,)          index/file entry counts and peer count
  CONTROL (shutdown,)       replies (bye,) and stops the daemon
  ========================  =============================================

Placement stays a *sender-side* decision: an insert arrives as one
message per replica, addressed to the daemon that must hold it, and is
applied with :meth:`repro.storage.store.DHTStorage.put_local`.  Lookups
need no daemon-side logic at all -- they are addressed to the ``node:``
endpoint and served by the unmodified service handlers.

Membership is deliberately minimal (a full-mesh member list seeded
through one bootstrap daemon): enough to run real multi-process
overlays and exercise over-the-wire joins, while the churn/stabilization
machinery stays the simulation's domain.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.core.cache import CachePolicy
from repro.core.fields import ARTICLE_SCHEMA, Schema
from repro.core.scheme import (
    IndexScheme,
    complex_scheme,
    flat_scheme,
    simple_scheme,
)
from repro.core.service import IndexService
from repro.dht import (
    DEFAULT_BITS,
    CANNetwork,
    ChordNetwork,
    DHTProtocol,
    IdealRing,
    KademliaNetwork,
    PastryNetwork,
    hash_key,
)
from repro.net.message import Message, MessageKind
from repro.rpc.transport import (
    Address,
    AsyncioTransport,
    daemon_endpoint_name,
)
from repro.storage.store import DHTStorage

#: Names accepted by ``--substrate`` / :func:`build_substrate`.
SUBSTRATES = ("ideal", "chord", "kademlia", "pastry", "can")
#: Names accepted by ``--scheme`` / :func:`build_scheme`.
SCHEMES = ("simple", "flat", "complex")


def build_substrate(
    name: str, node_ids: list[int], bits: int = DEFAULT_BITS
) -> DHTProtocol:
    """One overlay instance of the named substrate over ``node_ids``."""
    if name == "ideal":
        ring = IdealRing(bits)
        for node_id in node_ids:
            ring.add_node(node_id)
        return ring
    if name == "chord":
        return ChordNetwork.bulk_build(node_ids, bits=bits)
    if name == "kademlia":
        return KademliaNetwork.bulk_build(node_ids, bits=bits)
    if name == "pastry":
        return PastryNetwork.bulk_build(node_ids, bits=bits)
    if name == "can":
        return CANNetwork.bulk_build(node_ids, bits=bits)
    raise ValueError(f"unknown substrate: {name!r}")


def build_scheme(name: str, schema: Schema) -> IndexScheme:
    """The named index scheme from the paper's evaluation."""
    if name == "simple":
        return simple_scheme(schema)
    if name == "flat":
        return flat_scheme(schema)
    if name == "complex":
        return complex_scheme(schema)
    raise ValueError(f"unknown scheme: {name!r}")


def format_member(node_id: int, address: Address) -> str:
    """Wire form of one membership entry: ``<id:x>@host:port``."""
    return f"{node_id:x}@{address[0]}:{address[1]}"


def parse_member(entry: str) -> tuple[int, Address]:
    """Inverse of :func:`format_member`."""
    id_text, _, location = entry.partition("@")
    host, _, port_text = location.rpartition(":")
    return int(id_text, 16), (host, int(port_text))


class NodeDaemon:
    """One substrate node served over real sockets.

    Construct, then ``await start()`` on the event loop that should own
    the sockets; ``await serve()`` blocks until :meth:`stop` (or an
    over-the-wire shutdown) fires.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        substrate: str = "chord",
        scheme: str = "simple",
        cache: str = "none",
        replication: int = 1,
        bits: int = DEFAULT_BITS,
        node_id: Optional[int] = None,
        schema: Optional[Schema] = None,
        request_timeout_ms: float = 250.0,
        max_retries: int = 3,
    ) -> None:
        self.host = host
        self.requested_port = port
        self.substrate_name = substrate
        self.scheme_name = scheme
        self.bits = bits
        self.replication = replication
        self.schema = schema if schema is not None else ARTICLE_SCHEMA
        self.cache_policy, self.cache_capacity = CachePolicy.parse(cache)
        self._explicit_node_id = node_id
        self.node_id: int = 0
        self.transport = AsyncioTransport(
            request_timeout_ms=request_timeout_ms, max_retries=max_retries
        )
        #: Known members, self included: node id -> daemon address.
        self.peers: dict[int, Address] = {}
        self.protocol: Optional[DHTProtocol] = None
        self.index_store: Optional[DHTStorage] = None
        self.file_store: Optional[DHTStorage] = None
        self.service: Optional[IndexService] = None
        self._stopping = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Address:
        """The bound listen address (valid after :meth:`start`)."""
        assert self.transport.listen_address is not None
        return self.transport.listen_address

    @property
    def control_name(self) -> str:
        """This daemon's control endpoint name."""
        return daemon_endpoint_name(*self.address)

    async def start(self, bootstrap: Optional[Address] = None) -> Address:
        """Bind the sockets, build the node, and (optionally) join.

        With a ``bootstrap`` address, membership is fetched over the
        wire from that daemon and the join is broadcast to the overlay;
        without one, this daemon seeds a new single-node overlay.
        Returns the bound address.
        """
        address = await self.transport.start(self.host, self.requested_port)
        assert address is not None
        host, port = address
        self.node_id = (
            self._explicit_node_id
            if self._explicit_node_id is not None
            else hash_key(f"{host}:{port}", self.bits)
        )
        self.protocol = build_substrate(
            self.substrate_name, [self.node_id], self.bits
        )
        self.index_store = DHTStorage(self.protocol, replication=self.replication)
        self.file_store = DHTStorage(self.protocol, replication=self.replication)
        self.service = IndexService(
            self.schema,
            build_scheme(self.scheme_name, self.schema),
            self.index_store,
            self.file_store,
            self.transport,
            cache_policy=self.cache_policy,
            cache_capacity=self.cache_capacity,
            local_nodes={self.node_id},
        )
        self.peers[self.node_id] = address
        self.transport.register(self.control_name, self._handle_control)
        if bootstrap is not None:
            await self._join(bootstrap)
        return address

    async def serve(self) -> None:
        """Block until the daemon is asked to stop, then shut down."""
        await self._stopping.wait()
        await self.transport.close()

    def stop(self) -> None:
        """Request a graceful shutdown (idempotent, loop-thread safe)."""
        self._stopping.set()

    async def _join(self, bootstrap: Address) -> None:
        """Fetch membership from the bootstrap daemon and announce us."""
        request = Message(
            kind=MessageKind.CONTROL,
            source=self.control_name,
            destination=daemon_endpoint_name(*bootstrap),
            payload=(
                "join",
                f"{self.node_id:x}",
                f"{self.address[0]}:{self.address[1]}",
            ),
        )
        response = await self.transport.request(request)
        assert response is not None and response.payload[0] == "members"
        for entry in response.payload[1:]:
            self._apply_member(*parse_member(entry))

    # -- membership ---------------------------------------------------------

    def _apply_member(self, node_id: int, address: Address) -> None:
        """Admit one member into the local overlay view (idempotent)."""
        if node_id == self.node_id or node_id in self.peers:
            return
        assert self.protocol is not None and self.service is not None
        self.peers[node_id] = address
        self.protocol.add_node(node_id)
        self.transport.add_route(IndexService.endpoint_name(node_id), address)
        self.transport.add_route(daemon_endpoint_name(*address), address)
        # register_nodes is restricted to local_nodes, so this only
        # refreshes bookkeeping -- remote node names stay routed.
        self.service.register_nodes()

    def _members_payload(self) -> tuple[str, ...]:
        return ("members",) + tuple(
            format_member(node_id, address)
            for node_id, address in sorted(self.peers.items())
        )

    def _broadcast_joined(self, node_id: int, address: Address) -> None:
        """Fire-and-forget join notification to every other peer."""
        entry_id, entry_address = node_id, address
        for peer_id, peer_address in list(self.peers.items()):
            if peer_id in (self.node_id, entry_id):
                continue
            notice = Message(
                kind=MessageKind.CONTROL,
                source=self.control_name,
                destination=daemon_endpoint_name(*peer_address),
                payload=(
                    "joined",
                    f"{entry_id:x}",
                    f"{entry_address[0]}:{entry_address[1]}",
                ),
            )
            self.transport.send_async(
                notice, lambda response: None, lambda error: None
            )

    # -- control endpoint ---------------------------------------------------

    def _handle_control(self, message: Message) -> Optional[Message]:
        if message.kind is MessageKind.INDEX_INSERT:
            assert self.index_store is not None
            key, value = message.payload
            self.index_store.put_local(self.node_id, key, value)
            return None
        if message.kind is not MessageKind.CONTROL or not message.payload:
            return message.reply(MessageKind.CONTROL, ("error", "bad-request"))
        verb, *rest = message.payload
        if verb == "store_file":
            assert self.file_store is not None
            key, value = rest
            self.file_store.put_local(self.node_id, key, value)
            return None
        if verb == "ping":
            return message.reply(
                MessageKind.CONTROL, ("pong", f"{self.node_id:x}")
            )
        if verb == "members":
            return message.reply(MessageKind.CONTROL, self._members_payload())
        if verb == "join":
            node_id, address = parse_member(f"{rest[0]}@{rest[1]}")
            self._broadcast_joined(node_id, address)
            self._apply_member(node_id, address)
            return message.reply(MessageKind.CONTROL, self._members_payload())
        if verb == "joined":
            node_id, address = parse_member(f"{rest[0]}@{rest[1]}")
            self._apply_member(node_id, address)
            return None
        if verb == "stats":
            assert self.index_store is not None and self.file_store is not None
            return message.reply(
                MessageKind.CONTROL,
                (
                    "stats",
                    str(self.index_store.entries_on_node(self.node_id)),
                    str(self.file_store.entries_on_node(self.node_id)),
                    str(len(self.peers)),
                ),
            )
        if verb == "shutdown":
            loop = asyncio.get_running_loop()
            loop.call_soon(self.stop)
            return message.reply(MessageKind.CONTROL, ("bye",))
        return message.reply(MessageKind.CONTROL, ("error", f"unknown:{verb}"))
