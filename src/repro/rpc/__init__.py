"""Real wire protocol for the index stack: codec, transport, daemons.

The simulation (:mod:`repro.sim`) runs the whole overlay in one process
over a virtual clock.  This package makes the *same* stack runnable as
real networked processes:

- :mod:`repro.rpc.codec` -- the versioned, deterministic wire format for
  :class:`repro.net.message.Message` (frame spec in the module
  docstring), plus the measured-vs-estimated size accounting;
- :mod:`repro.rpc.transport` -- :class:`AsyncioTransport`, a UDP+TCP
  transport with the simulated transport's ``send``/``send_async``
  surface, wall-clock timeouts mapped onto the typed
  :class:`~repro.net.transport.DeliveryError` hierarchy;
- :mod:`repro.rpc.daemon` -- :class:`NodeDaemon`, one substrate node on
  one socket (served by ``python -m repro.node``);
- :mod:`repro.rpc.cluster` -- :class:`LocalCluster` /
  :class:`ClusterClient`, the loopback harness used by the integration
  tests and ``examples/real_cluster.py``.

Simulation semantics are untouched: nothing here is imported by
:mod:`repro.sim`, and the simulated transport remains the default
everywhere else.
"""

from repro.rpc.codec import (
    WIRE_VERSION,
    CodecError,
    StreamUnframer,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    encode_stream,
    estimate_delta,
    measured_size_bytes,
)
from repro.rpc.cluster import ClusterClient, LocalCluster
from repro.rpc.daemon import NodeDaemon, build_scheme, build_substrate
from repro.rpc.transport import (
    AsyncioTransport,
    WallClock,
    daemon_endpoint_name,
)

__all__ = [
    "WIRE_VERSION",
    "CodecError",
    "StreamUnframer",
    "decode_frame",
    "decode_message",
    "encode_frame",
    "encode_message",
    "encode_stream",
    "estimate_delta",
    "measured_size_bytes",
    "AsyncioTransport",
    "WallClock",
    "daemon_endpoint_name",
    "NodeDaemon",
    "build_scheme",
    "build_substrate",
    "ClusterClient",
    "LocalCluster",
]
